(** Pre-decoded, closure-threaded basic-block emulator.

    [compile] translates a validated {!Wish_isa.Code.t} image once, ahead
    of execution:

    - every static instruction becomes an OCaml closure with its operand
      shape, guard register, ALU/CMP operation and immediates resolved at
      compile time — executing it performs no variant matching;
    - straight-line runs are fused into superblocks: each closure tail-calls
      the next instruction's closure directly, so the fetch/dispatch loop
      in {!run} executes once per block instead of once per instruction.
      Blocks end at control transfers ({!Wish_isa.Code.ends_block});
      in [Predicate_through] mode wish jumps and wish joins always fall
      through, so they are fused and the mode gets its own, coarser block
      graph;
    - per-step facts are reported through one caller-supplied mutable
      {!Exec.out} record, reused across steps: the hot loop allocates
      nothing.

    The interpreted {!Exec.step} remains the golden reference; the
    [@emu-identity] test group and the [@emu-smoke] bench assert that this
    module is observably equivalent, step for step and trace for trace.

    Register and predicate indices are static instruction fields validated
    once by [Code.create], so the specialized closures use unchecked array
    accesses; [WISH_EMU_CHECKED=1] (or [compile ~checked:true]) rebuilds
    the block graph over the fully bounds-checked interpreter core
    instead. Data-memory accesses stay checked in both regimes —
    addresses are dynamic and {!Memory.Fault} is architectural
    semantics. *)

open Wish_isa

(* Translation-time miscompile drill for the differential fuzzer: when
   armed, add-immediate closures are specialized with [k + 1]. The
   wishfuzz lockstep oracle must catch it and shrink the counterexample
   to a few instructions — the end-to-end proof that the oracle watches
   every specialized closure, not just the dispatch loop. *)
let bug_site =
  Wish_util.Faultpoint.register "emu.compile.bug"
    ~doc:"miscompile add-immediate (k+1) during closure specialization (wishfuzz drill)"

type sink = Exec.out -> unit

(* Physical-identity sentinel: [run ~sink:no_sink] skips the per-step
   callback entirely instead of paying an indirect call into a no-op. *)
let no_sink : sink = fun _ -> ()

type t = {
  mode : Exec.mode;
  checked : bool;
  n : int;
  core : (State.t -> Exec.out -> unit) array;
      (* specialized closures: facts + state effects; [st.pc] is
         maintained by the block driver, once per block *)
  steps : (State.t -> Exec.out -> unit) array;
      (* single-instruction closures: core + [st.pc] update *)
  suffix_len : int array; (* instructions from pc to its block's end *)
  leaders : bool array;
  blocks : int; (* static basic blocks in this mode's graph *)
}

let mode t = t.mode
let is_checked t = t.checked
let block_count t = t.blocks
let block_leaders t = t.leaders

(** Mean static instructions per block in this mode's block graph. *)
let mean_block_len t = float_of_int t.n /. float_of_int (max 1 t.blocks)

(* Unchecked register-file primitives. Safe: every index passed below is
   a static field of a [Code.create]-validated instruction, and writes to
   r0/p0 are elided at compile time rather than tested per step. *)
let[@inline] rd (st : State.t) r = Array.unsafe_get st.regs r
let[@inline] wr (st : State.t) r v = Array.unsafe_set st.regs r v
let[@inline] rp (st : State.t) p = Array.unsafe_get st.pregs p
let[@inline] wp (st : State.t) p v = Array.unsafe_set st.pregs p v

(* Specialize the instruction at [pc] into a closure computing its facts
   and state effects. Leaves [st.pc] alone (the block driver maintains
   it) and never touches [st.retired] (counted per block).

   The closure bodies below spell the five fact stores out instead of
   sharing a [set_facts] helper: a shared helper would be a separate
   closure, and each call costs an indirect jump on the per-instruction
   path — comparable to the stores themselves. Same reason the guard
   test is duplicated per arm instead of wrapped by a combinator, and
   the cmp/pset destinations are -1-encoded ints tested inline rather
   than a specialized write-back closure. *)
let specialize (m : Exec.mode) code pc : State.t -> Exec.out -> unit =
  let i = Code.get code pc in
  let fall = pc + 1 in
  let g = i.Inst.guard in
  let open Exec in
  match i.op with
  | Inst.Nop ->
    if g = Reg.p0 then (fun _st out ->
      out.o_pc <- pc;
      out.o_guard_true <- true;
      out.o_taken <- false;
      out.o_next_pc <- fall;
      out.o_addr <- -1)
    else
      fun st out ->
        out.o_pc <- pc;
        out.o_guard_true <- rp st g;
        out.o_taken <- false;
        out.o_next_pc <- fall;
        out.o_addr <- -1
  | Inst.Alu { op; dst; src1; src2 } ->
    let work =
      if dst = Reg.r0 then fun _ -> ()
      else begin
        match src2 with
        | Inst.Imm k -> (
          match op with
          | Inst.Add ->
            let k = if Wish_util.Faultpoint.fires bug_site then k + 1 else k in
            fun st -> wr st dst (rd st src1 + k)
          | Inst.Sub -> fun st -> wr st dst (rd st src1 - k)
          | Inst.Mul -> fun st -> wr st dst (rd st src1 * k)
          | Inst.And -> fun st -> wr st dst (rd st src1 land k)
          | Inst.Or -> fun st -> wr st dst (rd st src1 lor k)
          | Inst.Xor -> fun st -> wr st dst (rd st src1 lxor k)
          | Inst.Shl ->
            let k = k land 63 in
            fun st -> wr st dst (rd st src1 lsl k)
          | Inst.Shr ->
            let k = k land 63 in
            fun st -> wr st dst (rd st src1 asr k))
        | Inst.Reg r2 -> (
          match op with
          | Inst.Add -> fun st -> wr st dst (rd st src1 + rd st r2)
          | Inst.Sub -> fun st -> wr st dst (rd st src1 - rd st r2)
          | Inst.Mul -> fun st -> wr st dst (rd st src1 * rd st r2)
          | Inst.And -> fun st -> wr st dst (rd st src1 land rd st r2)
          | Inst.Or -> fun st -> wr st dst (rd st src1 lor rd st r2)
          | Inst.Xor -> fun st -> wr st dst (rd st src1 lxor rd st r2)
          | Inst.Shl -> fun st -> wr st dst (rd st src1 lsl (rd st r2 land 63))
          | Inst.Shr -> fun st -> wr st dst (rd st src1 asr (rd st r2 land 63)))
      end
    in
    if g = Reg.p0 then (fun st out ->
      work st;
      out.o_pc <- pc;
      out.o_guard_true <- true;
      out.o_taken <- false;
      out.o_next_pc <- fall;
      out.o_addr <- -1)
    else
      fun st out ->
        (if rp st g then begin
           work st;
           out.o_guard_true <- true
         end
         else out.o_guard_true <- false);
        out.o_pc <- pc;
        out.o_taken <- false;
        out.o_next_pc <- fall;
        out.o_addr <- -1
  | Inst.Cmp { op; dst_true; dst_false; src1; src2; unc } ->
    let value =
      match src2 with
      | Inst.Imm k -> (
        match op with
        | Inst.Eq -> fun st -> rd st src1 = k
        | Inst.Ne -> fun st -> rd st src1 <> k
        | Inst.Lt -> fun st -> rd st src1 < k
        | Inst.Le -> fun st -> rd st src1 <= k
        | Inst.Gt -> fun st -> rd st src1 > k
        | Inst.Ge -> fun st -> rd st src1 >= k)
      | Inst.Reg r2 -> (
        match op with
        | Inst.Eq -> fun st -> rd st src1 = rd st r2
        | Inst.Ne -> fun st -> rd st src1 <> rd st r2
        | Inst.Lt -> fun st -> rd st src1 < rd st r2
        | Inst.Le -> fun st -> rd st src1 <= rd st r2
        | Inst.Gt -> fun st -> rd st src1 > rd st r2
        | Inst.Ge -> fun st -> rd st src1 >= rd st r2)
    in
    (* Destination predicates as ints, -1 encoding "discarded" (p0 or
       absent). *)
    let dt = if dst_true = Reg.p0 then -1 else dst_true in
    let df = match dst_false with Some p when p <> Reg.p0 -> p | _ -> -1 in
    if g = Reg.p0 then (fun st out ->
      let v = value st in
      if dt >= 0 then wp st dt v;
      if df >= 0 then wp st df (not v);
      out.o_pc <- pc;
      out.o_guard_true <- true;
      out.o_taken <- false;
      out.o_next_pc <- fall;
      out.o_addr <- -1)
    else if unc then (fun st out ->
      (if rp st g then begin
         let v = value st in
         if dt >= 0 then wp st dt v;
         if df >= 0 then wp st df (not v);
         out.o_guard_true <- true
       end
       else begin
         (* cmp.unc with a false guard clears both destinations. *)
         if dt >= 0 then wp st dt false;
         if df >= 0 then wp st df false;
         out.o_guard_true <- false
       end);
      out.o_pc <- pc;
      out.o_taken <- false;
      out.o_next_pc <- fall;
      out.o_addr <- -1)
    else
      fun st out ->
        (if rp st g then begin
           let v = value st in
           if dt >= 0 then wp st dt v;
           if df >= 0 then wp st df (not v);
           out.o_guard_true <- true
         end
         else out.o_guard_true <- false);
        out.o_pc <- pc;
        out.o_taken <- false;
        out.o_next_pc <- fall;
        out.o_addr <- -1
  | Inst.Pset { dst; value } ->
    let dst = if dst = Reg.p0 then -1 else dst in
    if g = Reg.p0 then (fun st out ->
      if dst >= 0 then wp st dst value;
      out.o_pc <- pc;
      out.o_guard_true <- true;
      out.o_taken <- false;
      out.o_next_pc <- fall;
      out.o_addr <- -1)
    else
      fun st out ->
        (if rp st g then begin
           if dst >= 0 then wp st dst value;
           out.o_guard_true <- true
         end
         else out.o_guard_true <- false);
        out.o_pc <- pc;
        out.o_taken <- false;
        out.o_next_pc <- fall;
        out.o_addr <- -1
  | Inst.Load { dst; base; offset } ->
    (* A load to r0 still performs the read (it can fault); only the
       write-back is discarded. *)
    let dst = if dst = Reg.r0 then -1 else dst in
    if g = Reg.p0 then (fun st out ->
      let addr = rd st base + offset in
      let v = Memory.read st.State.mem addr in
      if dst >= 0 then wr st dst v;
      out.o_pc <- pc;
      out.o_guard_true <- true;
      out.o_taken <- false;
      out.o_next_pc <- fall;
      out.o_addr <- addr)
    else
      fun st out ->
        (if rp st g then begin
           let addr = rd st base + offset in
           let v = Memory.read st.State.mem addr in
           if dst >= 0 then wr st dst v;
           out.o_guard_true <- true;
           out.o_addr <- addr
         end
         else begin
           out.o_guard_true <- false;
           out.o_addr <- -1
         end);
        out.o_pc <- pc;
        out.o_taken <- false;
        out.o_next_pc <- fall
  | Inst.Store { src; base; offset } ->
    if g = Reg.p0 then (fun st out ->
      let addr = rd st base + offset in
      Memory.write st.State.mem addr (rd st src);
      out.o_pc <- pc;
      out.o_guard_true <- true;
      out.o_taken <- false;
      out.o_next_pc <- fall;
      out.o_addr <- addr)
    else
      fun st out ->
        (if rp st g then begin
           let addr = rd st base + offset in
           Memory.write st.State.mem addr (rd st src);
           out.o_guard_true <- true;
           out.o_addr <- addr
         end
         else begin
           out.o_guard_true <- false;
           out.o_addr <- -1
         end);
        out.o_pc <- pc;
        out.o_taken <- false;
        out.o_next_pc <- fall
  | Inst.Branch { kind; target } ->
    (* The successor of a taken branch is static — including the forced
       fall-through of wish jumps/joins in predicate-through mode. *)
    let follow =
      match (m, kind) with
      | Exec.Predicate_through, (Inst.Wish_jump | Inst.Wish_join) -> fall
      | _, (Inst.Cond | Inst.Wish_jump | Inst.Wish_join | Inst.Wish_loop) -> target
    in
    if g = Reg.p0 then (fun _st out ->
      out.o_pc <- pc;
      out.o_guard_true <- true;
      out.o_taken <- true;
      out.o_next_pc <- follow;
      out.o_addr <- -1)
    else
      fun st out ->
        (if rp st g then begin
           out.o_guard_true <- true;
           out.o_taken <- true;
           out.o_next_pc <- follow
         end
         else begin
           out.o_guard_true <- false;
           out.o_taken <- false;
           out.o_next_pc <- fall
         end);
        out.o_pc <- pc;
        out.o_addr <- -1
  | Inst.Jump { target } ->
    if g = Reg.p0 then (fun _st out ->
      out.o_pc <- pc;
      out.o_guard_true <- true;
      out.o_taken <- true;
      out.o_next_pc <- target;
      out.o_addr <- -1)
    else
      fun st out ->
        (if rp st g then begin
           out.o_guard_true <- true;
           out.o_taken <- true;
           out.o_next_pc <- target
         end
         else begin
           out.o_guard_true <- false;
           out.o_taken <- false;
           out.o_next_pc <- fall
         end);
        out.o_pc <- pc;
        out.o_addr <- -1
  | Inst.Call { target } ->
    if g = Reg.p0 then (fun st out ->
      State.push_ra st fall;
      out.o_pc <- pc;
      out.o_guard_true <- true;
      out.o_taken <- true;
      out.o_next_pc <- target;
      out.o_addr <- -1)
    else
      fun st out ->
        (if rp st g then begin
           State.push_ra st fall;
           out.o_guard_true <- true;
           out.o_taken <- true;
           out.o_next_pc <- target
         end
         else begin
           out.o_guard_true <- false;
           out.o_taken <- false;
           out.o_next_pc <- fall
         end);
        out.o_pc <- pc;
        out.o_addr <- -1
  | Inst.Return ->
    if g = Reg.p0 then (fun st out ->
      out.o_pc <- pc;
      out.o_guard_true <- true;
      out.o_taken <- true;
      out.o_next_pc <- State.pop_ra st;
      out.o_addr <- -1)
    else
      fun st out ->
        (if rp st g then begin
           out.o_guard_true <- true;
           out.o_taken <- true;
           out.o_next_pc <- State.pop_ra st
         end
         else begin
           out.o_guard_true <- false;
           out.o_taken <- false;
           out.o_next_pc <- fall
         end);
        out.o_pc <- pc;
        out.o_addr <- -1
  | Inst.Halt ->
    if g = Reg.p0 then (fun st out ->
      st.State.halted <- true;
      out.o_pc <- pc;
      out.o_guard_true <- true;
      out.o_taken <- false;
      out.o_next_pc <- fall;
      out.o_addr <- -1)
    else
      fun st out ->
        (if rp st g then begin
           st.State.halted <- true;
           out.o_guard_true <- true
         end
         else out.o_guard_true <- false);
        out.o_pc <- pc;
        out.o_taken <- false;
        out.o_next_pc <- fall;
        out.o_addr <- -1

(** [compile ?checked ~mode code] — one-time translation of [code] for
    [mode]. [checked] (default: the [WISH_EMU_CHECKED] environment flag)
    keeps every array access bounds-checked by building the block graph
    over the interpreter core — same block structure, golden accesses. *)
let compile ?checked ~mode code =
  let checked = match checked with Some c -> c | None -> State.checked in
  let n = Code.length code in
  let core =
    (* The image's static targets and register indices were validated by
       [Code.create] (the only constructor of a [Code.t]); that is what
       licenses the unchecked accesses inside [specialize]. *)
    Array.init n (fun pc ->
        if checked then fun st out -> Exec.step_at mode code st ~pc out
        else specialize mode code pc)
  in
  let steps =
    Array.map
      (fun f ->
        fun st (out : Exec.out) ->
          f st out;
          st.State.pc <- out.o_next_pc)
      core
  in
  let fuse_wish = mode = Exec.Predicate_through in
  let suffix_len = Array.make n 1 in
  (* Back to front: distance from each pc to the end of its block.
     [Code.create] guarantees the last instruction ends its block. *)
  for pc = n - 2 downto 0 do
    if not (Code.ends_block ~fuse_wish (Code.get code pc)) then
      suffix_len.(pc) <- suffix_len.(pc + 1) + 1
  done;
  let leaders = Code.block_leaders ~fuse_wish code in
  let blocks = Array.fold_left (fun acc l -> if l then acc + 1 else acc) 0 leaders in
  { mode; checked; n; core; steps; suffix_len; leaders; blocks }

(** [step t st out] — execute exactly one instruction, mirroring
    {!Exec.step_into} (facts into [out], [st.pc]/[st.retired] updated).
    The lockstep probe for compiled≡interpreted equivalence testing. *)
let step t (st : State.t) out =
  assert (not st.halted);
  let pc = st.pc in
  if pc < 0 || pc >= t.n then
    invalid_arg (Printf.sprintf "Compiled.step: pc %d outside [0, %d)" pc t.n);
  (Array.unsafe_get t.steps pc) st out;
  st.retired <- st.retired + 1

(** [run t st out ~sink ~fuel ~steps] — execute whole blocks until the
    machine halts or at least [steps] more instructions have retired
    (block fusion may overshoot to the end of the final block). [sink] is
    invoked once per instruction with the shared [out] record — it must
    copy what it needs and must not mutate [st]; pass {!no_sink} (that
    exact closure, compared physically) to run without per-step
    emission. Raises
    {!Exec.Out_of_fuel} exactly where the interpreted loop would: blocks
    that would cross the fuel line fall back to fuel-checked
    single-stepping. *)
let run t (st : State.t) out ~(sink : sink) ~fuel ~steps =
  let target =
    let tgt = st.retired + steps in
    if tgt < st.retired then max_int else tgt (* overflow clamp *)
  in
  let core = t.core and slen = t.suffix_len and stepa = t.steps in
  let checked = t.checked in
  if fuel = max_int && target = max_int && not checked then
    (* Unbounded fast path: no fuel or step accounting per block. This is
       the run-to-completion configuration (Trace.generate, Profile,
       benches); mcf's architectural block graph averages under four
       instructions per block, so the bound checks are a measurable
       per-instruction tax there. *)
    while not st.halted do
      let pc = st.pc in
      let len = Array.unsafe_get slen pc in
      if sink == no_sink then
        for p = pc to pc + len - 1 do
          (Array.unsafe_get core p) st out
        done
      else
        for p = pc to pc + len - 1 do
          (Array.unsafe_get core p) st out;
          sink out
        done;
      st.pc <- out.o_next_pc;
      st.retired <- st.retired + len
    done
  else
  while (not st.halted) && st.retired < target do
    let pc = st.pc in
    if checked && (pc < 0 || pc >= t.n) then
      invalid_arg (Printf.sprintf "Compiled.run: pc %d outside [0, %d)" pc t.n);
    let len = Array.unsafe_get slen pc in
    if st.retired + len > fuel then begin
      (* Fuel-exact fallback: same raise point as the interpreter. *)
      if st.retired >= fuel then raise (Exec.Out_of_fuel fuel);
      (Array.unsafe_get stepa pc) st out;
      sink out;
      st.retired <- st.retired + 1
    end
    else begin
      (* One dispatch per block: the inner loop walks the straight-line
         run to the block's end; [st.pc] is updated once, from the
         terminal instruction's successor. *)
      if sink == no_sink then
        for p = pc to pc + len - 1 do
          (Array.unsafe_get core p) st out
        done
      else
        for p = pc to pc + len - 1 do
          (Array.unsafe_get core p) st out;
          sink out
        done;
      st.pc <- out.o_next_pc;
      st.retired <- st.retired + len
    end
  done

(** [run_to_halt t st out ~sink ~fuel] — {!run} with no step bound. *)
let run_to_halt t st out ~sink ~fuel = run t st out ~sink ~fuel ~steps:max_int

(** [run_hooked t st out ~hooks ~fuel ~steps] — the warm-sink execution
    mode: like {!run} but the per-instruction consumer is selected per pc
    from [hooks] (so a warming plan pays one indirect call into a
    specialized hook instead of decode-plus-dispatch per instruction),
    and the stop is *exact*: where {!run} overshoots to the end of the
    final block, this driver single-steps the last partial block so
    [st.retired] lands precisely on the requested count. Sampled-run
    checkpoints cut at precise trace indices; that exactness is what lets
    the fused warming path replace per-entry trace replay. Fuel raises
    {!Exec.Out_of_fuel} at exactly the interpreter's instruction. *)
let run_hooked t (st : State.t) out ~(hooks : sink array) ~fuel ~steps =
  let target =
    let tgt = st.retired + steps in
    if tgt < st.retired then max_int else tgt (* overflow clamp *)
  in
  let core = t.core and slen = t.suffix_len and stepa = t.steps in
  let checked = t.checked in
  while (not st.halted) && st.retired < target do
    let pc = st.pc in
    if checked && (pc < 0 || pc >= t.n) then
      invalid_arg (Printf.sprintf "Compiled.run_hooked: pc %d outside [0, %d)" pc t.n);
    let len = Array.unsafe_get slen pc in
    if st.retired + len > fuel then begin
      (* Fuel-exact fallback: same raise point as the interpreter. *)
      if st.retired >= fuel then raise (Exec.Out_of_fuel fuel);
      (Array.unsafe_get stepa pc) st out;
      let h = Array.unsafe_get hooks pc in
      if h != no_sink then h out;
      st.retired <- st.retired + 1
    end
    else if st.retired + len > target then begin
      (* Exact-stop fallback: the block would overshoot [target], so walk
         its head instruction by instruction. *)
      (Array.unsafe_get stepa pc) st out;
      let h = Array.unsafe_get hooks pc in
      if h != no_sink then h out;
      st.retired <- st.retired + 1
    end
    else begin
      for p = pc to pc + len - 1 do
        (Array.unsafe_get core p) st out;
        (* [no_sink] marks pcs whose warm step is statically nothing
           (straight-line instructions on an already-touched I-line): a
           pointer compare instead of an indirect call, on the ~3/4 of a
           typical stream that retires through here. *)
        let h = Array.unsafe_get hooks p in
        if h != no_sink then h out
      done;
      st.pc <- out.o_next_pc;
      st.retired <- st.retired + len
    end
  done
