(** ISA-level dynamic profiling: per-branch execution/taken counts and
    instruction mix from an architectural run. Feeds the compiler's
    profile-guided decisions and Table 4-style characterization. *)

type branch_stats = { mutable executed : int; mutable taken : int }

type t = {
  branches : (int, branch_stats) Hashtbl.t;  (** pc → stats, conditional only *)
  mutable dynamic_insts : int;
  mutable dynamic_cond_branches : int;
  mutable dynamic_wish_branches : int;
  mutable dynamic_wish_loops : int;
  mutable guard_false_insts : int;
  mutable loads : int;
  mutable stores : int;
}

val create : unit -> t

(** [record t code out] folds one executed instruction (its facts read
    from the shared out-record) into the profile. The architectural
    direction of a guarded branch is its guard. *)
val record : t -> Wish_isa.Code.t -> Exec.out -> unit

(** [of_program ?fuel program] profiles a full architectural run through
    the compiled emulator ({!Trace.use_interpreter} falls back to the
    reference interpreter; counts are identical either way). *)
val of_program : ?fuel:int -> Wish_isa.Program.t -> t * State.t

val taken_rate : t -> int -> float
val static_branch_count : t -> int
