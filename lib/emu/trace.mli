(** Correct-path traces.

    A trace is the emulator's predicate-through execution recorded one
    entry per retired instruction (guard-false NOP entries included). It
    plays the role of the paper's Pin-generated IA-64 traces: the oracle
    that directs the timing simulator's correct-path fetch.

    Entries live in fixed-capacity chunks, one packed 63-bit word per
    entry (pc, next-pc delta, address, guard/taken bits — out-of-range
    fields escape to a side table), so multi-million-entry traces stay
    cheap and growth never copies. Two flavours share the type:

    - {!generate} builds a *materialized* trace: every chunk retained,
      random access over the whole run, marshal-safe (cacheable).
    - {!stream} builds a *streaming* trace: chunks are generated on
      demand from a paused emulator ({!ensure}) and recycled once the
      consumer declares them dead ({!release}), keeping resident memory
      bounded by the consumer's look-back window at any run length. *)

type t

(** Entries generated so far (the full dynamic length once {!finished}). *)
val length : t -> int

(** The emulator behind this trace has halted: {!length} is final. *)
val finished : t -> bool

(** [false] for {!generate}d traces, [true] for {!stream}ed ones. *)
val is_streaming : t -> bool

(** Accessors. Raise [Invalid_argument] outside the retained window —
    call {!ensure} first when reading near the generation frontier. *)

val pc : t -> int -> int

val next_pc : t -> int -> int
val addr : t -> int -> int
val guard_true : t -> int -> bool
val taken : t -> int -> bool

(** Single-read decode path for per-entry scans: [word t i] bounds-checks
    once and returns the packed entry word; the [w_*] decoders then
    extract fields from that word with pure arithmetic, no further
    lookups. If [w_escaped w] is true the entry's fields overflowed the
    packed format and live in a side table — fall back to the
    single-field accessors above for that entry. *)

val word : t -> int -> int

val w_guard_true : int -> bool
val w_taken : int -> bool
val w_escaped : int -> bool
val w_pc : int -> int
val w_next_pc : int -> int
val w_addr : int -> int

(** [iter_range t ~from ~until ~f] — decode entries [from, until) in one
    pass, resolving the chunk once per chunk and reading each packed word
    once (the functional-warming fast path; the single-field accessors
    pay one chunk lookup per field). The range must be available
    ({!ensure}) and still retained. *)
val iter_range :
  t ->
  from:int ->
  until:int ->
  f:(int -> pc:int -> guard_true:bool -> taken:bool -> addr:int -> unit) ->
  unit

(** [ensure t i] makes entry [i] available, pulling the streaming
    emulator forward as needed; [false] means the trace ends before [i].
    Constant-time on materialized traces. *)
val ensure : t -> int -> bool

(** [release t i] declares every entry below [i] dead — the consumer
    will never read them again, not even through a misprediction-recovery
    rewind. Streaming traces recycle the chunks this fully covers;
    materialized traces ignore the call. *)
val release : t -> int -> unit

(** Entries per chunk (the {!release} granularity). *)
val chunk_capacity : t -> int

(** Entries currently resident, and the high-water mark over the trace's
    lifetime — the bounded-memory guarantee is [peak_resident_entries]
    staying independent of {!length} for streamed runs. *)

val resident_entries : t -> int

val peak_resident_entries : t -> int

(** Approximate retained buffer footprint in memory words. *)
val resident_words : t -> int

exception Out_of_fuel of int

(** [set_sealed t flag] — while sealed, an {!ensure} that would need the
    paused emulator raises [Failure] instead of pulling it. The sampled
    coordinator seals the trace while measurement windows run on worker
    domains, so a window out-reading its pre-recorded margin fails loudly
    instead of racing the generator. Recorded entries stay readable. *)
val set_sealed : t -> bool -> unit

(** [warm_to t ~hooks ~until] — trace-free functional warming: advance
    the paused emulator to exactly [until] retired instructions, feeding
    each retired instruction's {!Exec.out} facts to [hooks.(pc)] instead
    of recording an entry, and mark the skipped index range as
    never-to-be-recorded. Streaming traces only; [hooks] needs one entry
    per static instruction. Returns the new {!length} — [until] unless
    the program halts first. Subsequent {!ensure}/window reads must stay
    at or above this point (skipped indices are not decodable). Raises
    {!Out_of_fuel} at exactly the instruction the recording path would. *)
val warm_to : t -> hooks:(Exec.out -> unit) array -> until:int -> int

(** Sentinel hook for pcs whose warm step is statically nothing
    (physically {!Compiled.no_sink}): {!warm_to} recognizes it by
    identity and skips the indirect call entirely. Warming plans mark
    straight-line instructions on an already-touched I-line with it. *)
val no_hook : Exec.out -> unit

(** Force trace generation through the reference interpreter instead of
    the compiled emulator ({!Wish_emu.Compiled}). Byte-identical output —
    this is the [--emu-interp] A/B lever of the drivers, and the
    [@emu-identity] tests exist to keep the claim honest. Consult it at
    {!generate}/{!stream} time (per trace, not per entry). *)
val use_interpreter : bool ref

(** [generate ?fuel ?hint program] runs the emulator in predicate-through
    mode to completion and records the materialized trace. [hint] — an
    approximate dynamic length ({!Wish_workloads.Bench} supplies one) —
    pre-sizes the chunk directory. Returns the trace and the final
    architectural state (whose {!State.outcome} equals the
    architectural-mode outcome — a property the test suite checks). *)
val generate : ?fuel:int -> ?hint:int -> Wish_isa.Program.t -> t * State.t

(** [stream ?fuel ?chunk_bits program] — lazy bounded-memory trace over
    the same execution; [chunk_bits] sizes chunks at [2^chunk_bits]
    entries (default 15; tests shrink it to force chunk crossings). *)
val stream : ?fuel:int -> ?chunk_bits:int -> Wish_isa.Program.t -> t
