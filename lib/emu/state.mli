(** Architectural state of a WISC machine. *)

type t = {
  regs : int array;  (** 64 integer registers; [regs.(0)] stays 0 *)
  pregs : bool array;  (** 64 predicate registers; [pregs.(0)] stays true *)
  mem : Memory.t;
  mutable pc : int;
  mutable ra_stack : int list;  (** implicit return-address stack *)
  mutable halted : bool;
  mutable retired : int;  (** dynamic instruction count, NOPs included *)
}

exception Call_stack_error of string

val ra_stack_limit : int
val create : Wish_isa.Program.t -> t
val read_reg : t -> Wish_isa.Reg.ireg -> int

(** [write_reg] discards writes to r0. *)
val write_reg : t -> Wish_isa.Reg.ireg -> int -> unit

val read_pred : t -> Wish_isa.Reg.preg -> bool

(** [write_pred] discards writes to p0. *)
val write_pred : t -> Wish_isa.Reg.preg -> bool -> unit

(** Debug-mode flag (env [WISH_EMU_CHECKED]): when set, the [fast_*]
    accessors below keep their bounds checks. Off by default — the
    emulator hot paths only index with static fields of a
    [Code.create]-validated image, where the checks are redundant. *)
val checked : bool

(** Hot-path register-file accessors: unchecked unless {!checked}. The
    index MUST come from a validated instruction; arbitrary indices
    belong on {!read_reg} and friends. Writes to r0/p0 are discarded. *)

val fast_read_reg : t -> Wish_isa.Reg.ireg -> int

val fast_write_reg : t -> Wish_isa.Reg.ireg -> int -> unit
val fast_read_pred : t -> Wish_isa.Reg.preg -> bool
val fast_write_pred : t -> Wish_isa.Reg.preg -> bool -> unit

(** [push_ra]/[pop_ra] raise {!Call_stack_error} on overflow/underflow. *)
val push_ra : t -> int -> unit

val pop_ra : t -> int

(** Observable outcome of a run, used to compare binaries for
    architectural equivalence. Registers are excluded on purpose:
    different binaries of the same source use registers differently; the
    contract is over memory. *)
type outcome = { memory_checksum : int; retired : int }

val outcome : t -> outcome
