(** Single-step architectural semantics.

    Two execution modes:
    - [Architectural]: every branch follows its real semantics. This is the
      golden model used for equivalence testing between binaries.
    - [Predicate_through]: wish jumps and wish joins are forced to fall
      through. Because everything they would have jumped over is guarded by
      the complementary predicate, this is architecturally equivalent (the
      very property predication relies on); it yields a linear trace that
      covers both arms of each wish region, which is what the timing
      simulator's oracle needs. Wish loops keep their real semantics in
      both modes. *)

open Wish_isa

type mode = Architectural | Predicate_through

(** Dynamic facts about one executed instruction — exactly what the timing
    simulator's oracle needs beyond the static code image. *)
type step = {
  pc : int;
  guard_true : bool;
  taken : bool; (* branch direction; false for non-branches *)
  next_pc : int; (* successor in this mode's order *)
  addr : int; (* accessed memory word address, or -1 *)
}

(** The same facts as a caller-supplied mutable record, reused across
    steps so the emulator's per-instruction loop allocates nothing. *)
type out = {
  mutable o_pc : int;
  mutable o_guard_true : bool;
  mutable o_taken : bool;
  mutable o_next_pc : int;
  mutable o_addr : int;
}

let make_out () = { o_pc = 0; o_guard_true = false; o_taken = false; o_next_pc = 0; o_addr = -1 }

let eval_operand (st : State.t) = function
  | Inst.Reg r -> State.fast_read_reg st r
  | Inst.Imm n -> n

let eval_alu op a b =
  match op with
  | Inst.Add -> a + b
  | Inst.Sub -> a - b
  | Inst.Mul -> a * b
  | Inst.And -> a land b
  | Inst.Or -> a lor b
  | Inst.Xor -> a lxor b
  | Inst.Shl -> a lsl (b land 63)
  | Inst.Shr -> a asr (b land 63)

let eval_cmp op a b =
  match op with
  | Inst.Eq -> a = b
  | Inst.Ne -> a <> b
  | Inst.Lt -> a < b
  | Inst.Le -> a <= b
  | Inst.Gt -> a > b
  | Inst.Ge -> a >= b

(** [step_at mode code st ~pc o] executes the instruction at [pc]: applies
    its state effects, fills [o] with the dynamic facts, and sets [st.pc]
    to the successor. Does NOT touch [st.retired] — bookkeeping belongs to
    the caller ({!step_into} counts one instruction at a time; the block
    emulator counts whole blocks). *)
let step_at mode code (st : State.t) ~pc (o : out) =
  let i = Code.get code pc in
  let guard_true = State.fast_read_pred st i.guard in
  let fall = pc + 1 in
  o.o_pc <- pc;
  o.o_guard_true <- guard_true;
  o.o_taken <- false;
  o.o_next_pc <- fall;
  o.o_addr <- -1;
  (if not guard_true then
     (* Architectural NOP — except cmp.unc, which clears both destination
        predicates when its guard is false (IA-64 semantics). *)
     match i.op with
     | Inst.Cmp { dst_true; dst_false; unc = true; _ } ->
       State.fast_write_pred st dst_true false;
       (match dst_false with Some p -> State.fast_write_pred st p false | None -> ())
     | _ -> ()
   else
     match i.op with
     | Inst.Alu { op; dst; src1; src2 } ->
       let v = eval_alu op (State.fast_read_reg st src1) (eval_operand st src2) in
       State.fast_write_reg st dst v
     | Inst.Cmp { op; dst_true; dst_false; src1; src2; _ } ->
       let v = eval_cmp op (State.fast_read_reg st src1) (eval_operand st src2) in
       State.fast_write_pred st dst_true v;
       (match dst_false with Some p -> State.fast_write_pred st p (not v) | None -> ())
     | Inst.Pset { dst; value } -> State.fast_write_pred st dst value
     | Inst.Load { dst; base; offset } ->
       let addr = State.fast_read_reg st base + offset in
       State.fast_write_reg st dst (Memory.read st.mem addr);
       o.o_addr <- addr
     | Inst.Store { src; base; offset } ->
       let addr = State.fast_read_reg st base + offset in
       Memory.write st.mem addr (State.fast_read_reg st src);
       o.o_addr <- addr
     | Inst.Branch { kind; target } ->
       (* A guarded branch is taken iff its guard holds, and we only reach
          here with a true guard. In predicate-through mode wish jumps and
          joins fall through; the code they skip is all false-guarded. *)
       let follow =
         match (mode, kind) with
         | Predicate_through, (Inst.Wish_jump | Inst.Wish_join) -> fall
         | _, (Inst.Cond | Inst.Wish_jump | Inst.Wish_join | Inst.Wish_loop) -> target
       in
       o.o_taken <- true;
       o.o_next_pc <- follow
     | Inst.Jump { target } ->
       o.o_taken <- true;
       o.o_next_pc <- target
     | Inst.Call { target } ->
       State.push_ra st fall;
       o.o_taken <- true;
       o.o_next_pc <- target
     | Inst.Return ->
       let target = State.pop_ra st in
       o.o_taken <- true;
       o.o_next_pc <- target
     | Inst.Halt -> st.halted <- true
     | Inst.Nop -> ());
  st.pc <- o.o_next_pc

(** [step_into mode code st o] executes the instruction at [st.pc],
    updates [st] and writes the dynamic facts into [o] — the allocation-free
    form of {!step}. Must not be called when [st.halted]. *)
let step_into mode code (st : State.t) (o : out) =
  assert (not st.halted);
  step_at mode code st ~pc:st.pc o;
  st.retired <- st.retired + 1

(** [step mode code st] — thin allocating wrapper over {!step_into} for
    callers that want an immutable record per instruction. *)
let step mode code (st : State.t) =
  let o = make_out () in
  step_into mode code st o;
  {
    pc = o.o_pc;
    guard_true = o.o_guard_true;
    taken = o.o_taken;
    next_pc = o.o_next_pc;
    addr = o.o_addr;
  }

exception Out_of_fuel of int

(** [run ?mode ?fuel program] executes to completion. Raises {!Out_of_fuel}
    if more than [fuel] instructions retire (runaway-loop guard). *)
let run ?(mode = Architectural) ?(fuel = 200_000_000) program =
  let st = State.create program in
  let code = Program.code program in
  let o = make_out () in
  while not st.halted do
    if st.retired >= fuel then raise (Out_of_fuel fuel);
    step_into mode code st o
  done;
  st
