(** Flat word-addressed data memory. One word = one OCaml int; the memory
    hierarchy maps word address [a] to byte address [8*a]. *)

type t = { words : int array }

exception Fault of int

let create ~words = { words = Array.make words 0 }

let of_program (p : Wish_isa.Program.t) =
  let t = create ~words:p.mem_words in
  List.iter (fun (addr, v) -> t.words.(addr) <- v) p.data;
  t

let size t = Array.length t.words

(* The explicit fault check subsumes the bounds check, so the access
   itself is unchecked — memory is the emulator's hottest dynamic-index
   path and would otherwise pay the range test twice. The raise is kept
   out of line so [read]/[write] stay small enough for the non-flambda
   compiler to inline them into the emulator's load/store closures. *)
let[@inline never] fault addr = raise (Fault addr)

let[@inline] read t addr =
  if addr < 0 || addr >= Array.length t.words then fault addr
  else Array.unsafe_get t.words addr

let[@inline] write t addr v =
  if addr < 0 || addr >= Array.length t.words then fault addr
  else Array.unsafe_set t.words addr v

(** [checksum t] folds the whole memory into one value; used as the golden
    output when comparing binaries for architectural equivalence. *)
let checksum t =
  Array.fold_left (fun acc w -> (acc * 31) + w + 17 |> fun x -> x land max_int) 0 t.words
