(** Pre-decoded, closure-threaded basic-block emulator.

    A one-time translation pass over a {!Wish_isa.Code.t} image:
    every static instruction is specialized into a closure (operand
    shape, guard register, ALU/CMP op and immediates resolved at compile
    time), straight-line runs are fused so dispatch happens once per
    basic block, and step facts are reported through a single mutable
    {!Exec.out} record reused across steps. Observably equivalent to the
    interpreted {!Exec.step} — enforced by the [@emu-identity] tests. *)

type t

(** Per-step consumer. Called once per retired instruction with the
    shared {!Exec.out} record; it must copy what it needs and must not
    mutate the machine state. *)
type sink = Exec.out -> unit

(** Sentinel sink for callers that need no per-step facts (pure
    fast-forwarding, throughput benchmarks). Recognized by physical
    identity inside {!run}, which then skips the callback entirely. *)
val no_sink : sink

(** [compile ?checked ~mode code] translates [code] once for [mode].
    [checked] defaults to {!State.checked} (env [WISH_EMU_CHECKED]);
    when set, the block graph runs over the fully bounds-checked
    interpreter core instead of the specialized closures. *)
val compile : ?checked:bool -> mode:Exec.mode -> Wish_isa.Code.t -> t

val mode : t -> Exec.mode
val is_checked : t -> bool

(** Static basic blocks in this mode's block graph (wish jumps/joins are
    fused in [Predicate_through] mode, so its graph is coarser). *)
val block_count : t -> int

val block_leaders : t -> bool array
val mean_block_len : t -> float

(** [step t st out] — execute exactly one instruction; mirrors
    {!Exec.step_into} ([st.pc], [st.retired], facts into [out]). The
    lockstep probe used for equivalence testing. *)
val step : t -> State.t -> Exec.out -> unit

(** [run t st out ~sink ~fuel ~steps] — execute whole blocks until the
    machine halts or at least [steps] more instructions retire (block
    fusion may overshoot to the end of the final block). Raises
    {!Exec.Out_of_fuel} at exactly the instruction where the interpreted
    loop would. *)
val run : t -> State.t -> Exec.out -> sink:sink -> fuel:int -> steps:int -> unit

val run_to_halt : t -> State.t -> Exec.out -> sink:sink -> fuel:int -> unit

(** [run_hooked t st out ~hooks ~fuel ~steps] — warm-sink execution: the
    per-instruction consumer is chosen per pc from [hooks], and the stop
    is exact — the final partial block is single-stepped so [st.retired]
    lands precisely on the requested count (sampled-run checkpoints cut
    at precise trace indices). [hooks] must have one entry per static
    instruction; hooks must not mutate the machine state. A hook that is
    physically {!no_sink} is skipped without the indirect call — warming
    plans mark statically-inert pcs with it. Raises
    {!Exec.Out_of_fuel} at exactly the interpreter's instruction. *)
val run_hooked : t -> State.t -> Exec.out -> hooks:sink array -> fuel:int -> steps:int -> unit
