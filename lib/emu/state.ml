(** Architectural state of a WISC machine. *)

open Wish_isa

type t = {
  regs : int array; (* 64 integer registers; regs.(0) stays 0 *)
  pregs : bool array; (* 64 predicate registers; pregs.(0) stays true *)
  mem : Memory.t;
  mutable pc : int;
  mutable ra_stack : int list; (* implicit return-address stack *)
  mutable halted : bool;
  mutable retired : int; (* dynamic instruction count, NOPs included *)
}

exception Call_stack_error of string

let ra_stack_limit = 4096

let create (p : Program.t) =
  let pregs = Array.make Reg.pred_reg_count false in
  pregs.(Reg.p0) <- true;
  {
    regs = Array.make Reg.int_reg_count 0;
    pregs;
    mem = Memory.of_program p;
    pc = p.entry;
    ra_stack = [];
    halted = false;
    retired = 0;
  }

let read_reg t r = t.regs.(r)

let write_reg t r v = if r <> Reg.r0 then t.regs.(r) <- v

let read_pred t p = t.pregs.(p)

let write_pred t p v = if p <> Reg.p0 then t.pregs.(p) <- v

(* Debug-mode flag: WISH_EMU_CHECKED=1 keeps every register/predicate
   access of the emulator hot paths bounds-checked. Off by default: the
   indices those paths use are static fields of a [Code.t], all validated
   once by [Code.create], so the checks are provably redundant there. *)
let checked =
  match Sys.getenv_opt "WISH_EMU_CHECKED" with
  | None | Some ("" | "0" | "false") -> false
  | Some _ -> true

(** Hot-path register-file accessors for the emulator. The index MUST
    come from a [Code.create]-validated instruction; arbitrary indices
    belong on {!read_reg} and friends. *)

let[@inline] fast_read_reg t r = if checked then t.regs.(r) else Array.unsafe_get t.regs r

let[@inline] fast_write_reg t r v =
  if r <> Reg.r0 then if checked then t.regs.(r) <- v else Array.unsafe_set t.regs r v

let[@inline] fast_read_pred t p =
  if checked then t.pregs.(p) else Array.unsafe_get t.pregs p

let[@inline] fast_write_pred t p v =
  if p <> Reg.p0 then if checked then t.pregs.(p) <- v else Array.unsafe_set t.pregs p v

let push_ra t pc =
  if List.length t.ra_stack >= ra_stack_limit then
    raise (Call_stack_error "call stack overflow");
  t.ra_stack <- pc :: t.ra_stack

let pop_ra t =
  match t.ra_stack with
  | [] -> raise (Call_stack_error "return with empty call stack")
  | pc :: rest ->
    t.ra_stack <- rest;
    pc

(** Snapshot of the observable outcome of a run, used to compare binaries
    for architectural equivalence. Register state is excluded on purpose:
    different binaries of the same source program use registers
    differently; the contract is over memory. *)
type outcome = { memory_checksum : int; retired : int }

let outcome t = { memory_checksum = Memory.checksum t.mem; retired = t.retired }
