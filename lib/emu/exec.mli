(** Single-step architectural semantics.

    Two execution modes:
    - [Architectural]: every branch follows its real semantics — the
      golden model used for equivalence testing between binaries.
    - [Predicate_through]: wish jumps and wish joins are forced to fall
      through. Because everything they would have jumped over is guarded
      by the complementary predicate (or marked speculative), this is
      architecturally equivalent; it yields a linear trace covering both
      arms of each wish region, which the timing simulator's oracle
      needs. Wish loops keep their real semantics in both modes. *)

type mode = Architectural | Predicate_through

(** Dynamic facts about one executed instruction — exactly what the timing
    simulator's oracle needs beyond the static code image. *)
type step = {
  pc : int;
  guard_true : bool;
  taken : bool;  (** branch direction; false for non-branches *)
  next_pc : int;  (** successor in this mode's order *)
  addr : int;  (** accessed memory word address, or -1 *)
}

(** The same facts as a caller-supplied mutable record, reused across
    steps so per-instruction emulation allocates nothing. *)
type out = {
  mutable o_pc : int;
  mutable o_guard_true : bool;
  mutable o_taken : bool;
  mutable o_next_pc : int;
  mutable o_addr : int;
}

val make_out : unit -> out
val eval_alu : Wish_isa.Inst.aluop -> int -> int -> int
val eval_cmp : Wish_isa.Inst.cmpop -> int -> int -> bool

(** [step_at mode code st ~pc o] executes the instruction at [pc]: state
    effects, facts into [o], [st.pc] set to the successor. Does NOT touch
    [st.retired] — bookkeeping belongs to the caller ({!step_into} counts
    single instructions; {!Compiled} counts whole blocks). *)
val step_at : mode -> Wish_isa.Code.t -> State.t -> pc:int -> out -> unit

(** [step_into mode code st o] executes the instruction at [st.pc],
    updates [st] (including [retired]) and writes the facts into [o] —
    the allocation-free form of {!step}. Must not be called when
    [st.halted]. *)
val step_into : mode -> Wish_isa.Code.t -> State.t -> out -> unit

(** [step mode code st] — thin allocating wrapper over {!step_into} for
    callers that want an immutable record per instruction. *)
val step : mode -> Wish_isa.Code.t -> State.t -> step

exception Out_of_fuel of int

(** [run ?mode ?fuel program] executes to completion; raises
    {!Out_of_fuel} past [fuel] retired instructions (runaway guard). *)
val run : ?mode:mode -> ?fuel:int -> Wish_isa.Program.t -> State.t
