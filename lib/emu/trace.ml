(** Correct-path traces.

    The trace is the emulator's predicate-through execution recorded one
    entry per retired instruction (NOP-guarded entries included). It plays
    the role of the paper's Pin-generated IA-64 traces: the oracle that
    directs the timing simulator's correct-path fetch.

    Storage is a sequence of fixed-capacity chunks, each packing one entry
    into a single 63-bit word (pc, next-pc delta, address, guard/taken
    bits) — about 3x smaller than the previous struct-of-arrays layout,
    and growing by appending a chunk instead of copying the whole trace.
    A trace is either *materialized* (every chunk retained, the classic
    mode, marshal-safe for the artifact cache) or *streaming*: chunks are
    generated on demand from a paused emulator and recycled once the
    consumer {!release}s them, so resident memory stays bounded by the
    consumer's look-back window however long the run is. *)

open Wish_isa

(* Packed entry word (63 usable bits):
     bit  0         guard_true
     bit  1         taken
     bit  2         escape: fields live in the chunk's [wide] table
     bits 3..23     pc                      (21 bits)
     bits 24..36    next_pc - pc + 4096     (13-bit biased delta)
     bits 37..62    addr + 1                (26 bits; 0 = no address)
   Entries whose fields overflow these widths (never the case for our
   kernel-sized code images, but the format must not silently corrupt)
   set the escape bit and store the triple in a per-chunk side table. *)

let delta_bias = 4096

let fits ~pc ~next_pc ~addr =
  pc < 1 lsl 21
  && (let d = next_pc - pc + delta_bias in
      d >= 0 && d < 1 lsl 13)
  && addr >= -1
  && addr + 1 < 1 lsl 26

let pack ~guard_true ~taken ~pc ~next_pc ~addr =
  (if guard_true then 1 else 0)
  lor (if taken then 2 else 0)
  lor (pc lsl 3)
  lor ((next_pc - pc + delta_bias) lsl 24)
  lor ((addr + 1) lsl 37)

type chunk = {
  mutable base : int; (* absolute index of entry 0 *)
  mutable clen : int;
  words : int array; (* fixed capacity; reused across recycles *)
  wide : (int, int * int * int) Hashtbl.t; (* abs index -> pc, next_pc, addr *)
}

(* The paused emulator a streaming trace pulls entries from. Holds the
   compiled form of the image (closures — which Marshal rejects, but a
   *finished* trace, the only kind the artifact cache stores, has dropped
   its gen) plus the single out-record all refills reuse. [g_compiled]
   is [None] when {!use_interpreter} forces the reference interpreter. *)
type gen = {
  g_state : State.t;
  g_code : Code.t;
  g_fuel : int;
  g_out : Exec.out;
  g_compiled : Compiled.t option;
  mutable g_sink : (Exec.out -> unit) option; (* built on first refill *)
}

type t = {
  cbits : int;
  cmask : int;
  retain : bool; (* materialized: never recycle chunks *)
  mutable total : int; (* entries generated so far *)
  mutable dir : chunk array; (* slot k holds chunk index dir_base + k *)
  mutable dir_base : int;
  mutable ndir : int;
  mutable free : chunk list; (* recycled buffers awaiting reuse *)
  mutable gen : gen option; (* None once the emulator halted *)
  mutable peak : int; (* peak resident entries *)
  mutable hole : chunk option; (* shared placeholder for skipped slots *)
  mutable sealed : bool; (* refuse to pull the gen (worker-domain phase) *)
}

let default_chunk_bits = 15

let dummy_chunk = { base = -1; clen = 0; words = [||]; wide = Hashtbl.create 1 }

let create ?(chunk_bits = default_chunk_bits) ?(hint = 0) ~retain ~gen () =
  let csize = 1 lsl chunk_bits in
  let dir_cap = max 4 ((hint + csize - 1) / csize) in
  {
    cbits = chunk_bits;
    cmask = csize - 1;
    retain;
    total = 0;
    dir = Array.make dir_cap dummy_chunk;
    dir_base = 0;
    ndir = 0;
    free = [];
    gen;
    peak = 0;
    hole = None;
    sealed = false;
  }

let length t = t.total
let finished t = t.gen = None
let is_streaming t = not t.retain
let chunk_capacity t = t.cmask + 1

let resident_entries t = t.total - (t.dir_base lsl t.cbits)
let peak_resident_entries t = t.peak

(* Retained buffer footprint in words, directory and free list included. *)
let resident_words t =
  ((t.ndir + List.length t.free) * (t.cmask + 1)) + Array.length t.dir

let fresh_chunk t base =
  match t.free with
  | c :: rest ->
    t.free <- rest;
    c.base <- base;
    c.clen <- 0;
    if Hashtbl.length c.wide > 0 then Hashtbl.reset c.wide;
    c
  | [] ->
    { base; clen = 0; words = Array.make (t.cmask + 1) 0; wide = Hashtbl.create 0 }

let append_dir t c =
  if t.ndir = Array.length t.dir then begin
    let bigger = Array.make (2 * max 1 t.ndir) dummy_chunk in
    Array.blit t.dir 0 bigger 0 t.ndir;
    t.dir <- bigger
  end;
  t.dir.(t.ndir) <- c;
  t.ndir <- t.ndir + 1

let append_chunk t =
  let c = fresh_chunk t t.total in
  append_dir t c;
  c

(* The shared placeholder chunk occupying directory slots whose entries
   were executed fused (never recorded). It is never written, never
   recycled into the free list, and — by the consumer contract that only
   recorded indices are read — never decoded. One zeroed buffer serves
   every skipped slot. *)
let hole_chunk t =
  match t.hole with
  | Some c -> c
  | None ->
    let c = { base = -1; clen = 0; words = Array.make (t.cmask + 1) 0; wide = Hashtbl.create 1 } in
    t.hole <- Some c;
    c

let is_hole t c = match t.hole with Some h -> h == c | None -> false

(* [skip_to t i] — streaming only: declare entries [total, i) as executed
   but never to be recorded (the fused warming path consumed them as they
   ran). Fully skipped directory slots get the shared hole chunk; when
   [i] lands mid-chunk, that slot gets a real chunk so [push_out] can
   resume into it (entries of the slot below [i] stay garbage, which the
   contract already permits for sub-chunk [release] windows). *)
let skip_to t i =
  if t.retain then invalid_arg "Trace.skip_to: materialized traces record every entry";
  if i < t.total then invalid_arg "Trace.skip_to: cannot rewind";
  if i > t.total then begin
    let next_slot = t.dir_base + t.ndir in
    let si = i lsr t.cbits in
    let last_needed = if i land t.cmask <> 0 then si else si - 1 in
    for s = next_slot to last_needed do
      if s = si then append_dir t (fresh_chunk t (s lsl t.cbits))
      else append_dir t (hole_chunk t)
    done;
    t.total <- i
  end

(* Record one retired instruction from the shared out-record. This is the
   sink the compiled emulator drives once per instruction. *)
let push_out t (o : Exec.out) =
  let i = t.total in
  let c = if i land t.cmask = 0 then append_chunk t else t.dir.(t.ndir - 1) in
  let pc = o.Exec.o_pc and next_pc = o.Exec.o_next_pc and addr = o.Exec.o_addr in
  let w =
    if fits ~pc ~next_pc ~addr then
      pack ~guard_true:o.Exec.o_guard_true ~taken:o.Exec.o_taken ~pc ~next_pc ~addr
    else begin
      Hashtbl.replace c.wide i (pc, next_pc, addr);
      (if o.Exec.o_guard_true then 1 else 0) lor (if o.Exec.o_taken then 2 else 0) lor 4
    end
  in
  c.words.(i land t.cmask) <- w;
  c.clen <- c.clen + 1;
  t.total <- i + 1;
  let res = resident_entries t in
  if res > t.peak then t.peak <- res

(* ----------------------------------------------------------------- *)
(* Accessors                                                          *)
(* ----------------------------------------------------------------- *)

let chunk_of t i =
  let k = (i lsr t.cbits) - t.dir_base in
  if i < 0 || i >= t.total || k < 0 then
    invalid_arg
      (Printf.sprintf "Trace: index %d outside retained window [%d, %d)" i
         (t.dir_base lsl t.cbits) t.total);
  Array.unsafe_get t.dir k

let word t i = Array.unsafe_get (chunk_of t i).words (i land t.cmask)

(* Field decoders over an already-fetched packed word: the oracle's scan
   reads the word once and extracts every field it needs from the
   register, instead of one directory walk per field. Only valid when
   the escape bit is clear ([w_escaped w = false]); escaped entries must
   fall back to the single-field accessors below. *)
let w_guard_true w = w land 1 <> 0
let w_taken w = w land 2 <> 0
let w_escaped w = w land 4 <> 0
let w_pc w = (w lsr 3) land 0x1FFFFF
let w_next_pc w = ((w lsr 3) land 0x1FFFFF) + ((w lsr 24) land 0x1FFF) - delta_bias
let w_addr w = ((w lsr 37) land 0x3FFFFFF) - 1

let guard_true t i = word t i land 1 <> 0
let taken t i = word t i land 2 <> 0

(* Single-field decoders: no intermediate tuple on the oracle's
   per-entry scan path. *)

let pc t i =
  let c = chunk_of t i in
  let w = Array.unsafe_get c.words (i land t.cmask) in
  if w land 4 = 0 then (w lsr 3) land 0x1FFFFF
  else
    let p, _, _ = Hashtbl.find c.wide i in
    p

let next_pc t i =
  let c = chunk_of t i in
  let w = Array.unsafe_get c.words (i land t.cmask) in
  if w land 4 = 0 then ((w lsr 3) land 0x1FFFFF) + ((w lsr 24) land 0x1FFF) - delta_bias
  else
    let _, n, _ = Hashtbl.find c.wide i in
    n

let addr t i =
  let c = chunk_of t i in
  let w = Array.unsafe_get c.words (i land t.cmask) in
  if w land 4 = 0 then ((w lsr 37) land 0x3FFFFFF) - 1
  else
    let _, _, a = Hashtbl.find c.wide i in
    a

(** [iter_range t ~from ~until ~f] — decode entries [from, until) in one
    pass: the chunk is resolved once per chunk and each packed word is
    read exactly once, instead of one [chunk_of] per field per entry as
    the single-field accessors pay. This is the functional-warming fast
    path of sampled simulation. Entries must already be available
    (see {!ensure}) and still retained. *)
let iter_range t ~from ~until ~f =
  if until > from then begin
    (* Bounds-check the range ends once; unsafe reads inside. *)
    ignore (chunk_of t from);
    ignore (chunk_of t (until - 1));
    let i = ref from in
    while !i < until do
      let c = chunk_of t !i in
      let stop = min until (((!i lsr t.cbits) + 1) lsl t.cbits) in
      for j = !i to stop - 1 do
        let w = Array.unsafe_get c.words (j land t.cmask) in
        let guard_true = w land 1 <> 0 and taken = w land 2 <> 0 in
        if w land 4 = 0 then
          f j ~pc:((w lsr 3) land 0x1FFFFF) ~guard_true ~taken
            ~addr:(((w lsr 37) land 0x3FFFFFF) - 1)
        else
          let p, _, a = Hashtbl.find c.wide j in
          f j ~pc:p ~guard_true ~taken ~addr:a
      done;
      i := stop
    done
  end

(* ----------------------------------------------------------------- *)
(* Generation                                                         *)
(* ----------------------------------------------------------------- *)

exception Out_of_fuel = Exec.Out_of_fuel

(** Force trace generation through the reference interpreter instead of
    the compiled emulator ([--emu-interp] on the drivers). The two are
    byte-identical — this exists to prove it, and as an A/B lever. *)
let use_interpreter = ref false

let gen_sink t g =
  match g.g_sink with
  | Some s -> s
  | None ->
    let s o = push_out t o in
    g.g_sink <- Some s;
    s

(* Reference refill path: one interpreted step, one recorded entry. *)
let refill_interp t g ~upto =
  let st = g.g_state in
  let o = g.g_out in
  while t.total <= upto && not st.State.halted do
    if st.State.retired >= g.g_fuel then raise (Out_of_fuel g.g_fuel);
    Exec.step_into Exec.Predicate_through g.g_code st o;
    push_out t o
  done

(** [ensure t i] makes entry [i] available, pulling the paused emulator
    forward as needed; [false] means the trace ends before [i]. The
    compiled emulator advances in basic-block units, so a refill may
    record a few entries past [i] (bounded by the longest block). *)
let ensure t i =
  if i < t.total then true
  else
    match t.gen with
    | None -> false
    | Some g ->
      if t.sealed then
        failwith
          (Printf.sprintf
             "Trace.ensure: entry %d requested while sealed (a measurement window out-read its \
              pre-recorded margin of %d entries)"
             i t.total);
      let st = g.g_state in
      (if t.total <= i && not st.State.halted then
         match g.g_compiled with
         | Some c ->
           (* The gen's state only ever advances through this trace, so
              [st.retired] = [t.total] and a retired-count target is an
              entry-count target. *)
           Compiled.run c st g.g_out ~sink:(gen_sink t g) ~fuel:g.g_fuel
             ~steps:(i + 1 - t.total)
         | None -> refill_interp t g ~upto:i);
      if st.halted then t.gen <- None;
      i < t.total

(** [release t i] declares every entry below [i] dead: the consumer will
    never look at them again (not even through a misprediction-recovery
    rewind). Streaming traces recycle the chunks they fully cover;
    materialized traces ignore the call. *)
let release t i =
  if not t.retain then
    while t.ndir > 1 && (t.dir_base + 1) lsl t.cbits <= i do
      let dead = t.dir.(0) in
      Array.blit t.dir 1 t.dir 0 (t.ndir - 1);
      t.ndir <- t.ndir - 1;
      t.dir.(t.ndir) <- dummy_chunk;
      t.dir_base <- t.dir_base + 1;
      (* The shared hole placeholder may occupy many slots at once; it
         must never enter the free list (a recycle would write it). *)
      if not (is_hole t dead) then t.free <- dead :: t.free
    done

(** [set_sealed t flag] — while sealed, an {!ensure} that would need the
    paused emulator raises [Failure] instead of pulling it. The sampled
    coordinator seals the trace while measurement windows run (on worker
    domains the generator's state is not theirs to advance), so a window
    out-reading its pre-recorded margin fails loudly instead of racing
    the generator or silently diverging. *)
let set_sealed t flag = t.sealed <- flag

(** [warm_to t ~hooks ~until] — the trace-free warming driver: advance
    the paused emulator to exactly [until] retired instructions, feeding
    each retired instruction's facts to [hooks.(pc)] instead of recording
    a trace entry, then mark the skipped range with {!skip_to}. Streaming
    traces only. Returns the new {!length} ([until], or less if the
    program halts or was already past it — the invariant
    [gen.retired = total] is preserved either way). Raises
    {!Out_of_fuel} at exactly the instruction the recording path would. *)
let warm_to t ~hooks ~until =
  if t.retain then invalid_arg "Trace.warm_to: materialized traces record every entry";
  (match t.gen with
  | None -> ()
  | Some g ->
    let st = g.g_state in
    if until > t.total && not st.State.halted then begin
      (match g.g_compiled with
      | Some c -> Compiled.run_hooked c st g.g_out ~hooks ~fuel:g.g_fuel ~steps:(until - t.total)
      | None ->
        (* Reference-interpreter twin ([--emu-interp]): one step, one
           hook dispatch by the retired pc. *)
        let o = g.g_out in
        while st.State.retired < until && not st.State.halted do
          if st.State.retired >= g.g_fuel then raise (Out_of_fuel g.g_fuel);
          Exec.step_into Exec.Predicate_through g.g_code st o;
          let h = hooks.(o.Exec.o_pc) in
          if h != Compiled.no_sink then h o
        done);
      skip_to t st.State.retired;
      if st.State.halted then t.gen <- None
    end);
  t.total

let no_hook = Compiled.no_sink

let default_fuel = 200_000_000

let mk_gen ?(fuel = default_fuel) program =
  let code = Program.code program in
  {
    g_state = State.create program;
    g_code = code;
    g_fuel = fuel;
    g_out = Exec.make_out ();
    g_compiled =
      (if !use_interpreter then None
       else Some (Compiled.compile ~mode:Exec.Predicate_through code));
    g_sink = None;
  }

(** [generate ?fuel ?hint program] runs the emulator in predicate-through
    mode to completion and records the materialized trace. [hint] (an
    approximate dynamic length, e.g. {!Wish_workloads.Bench} knows one)
    pre-sizes the chunk directory. Returns the trace and the final
    architectural state (whose {!State.outcome} must equal the
    architectural-mode outcome — a property the test suite checks). *)
let generate ?fuel ?hint program =
  let g = mk_gen ?fuel program in
  let t = create ?hint ~retain:true ~gen:(Some g) () in
  (match g.g_compiled with
  | Some c -> Compiled.run_to_halt c g.g_state g.g_out ~sink:(gen_sink t g) ~fuel:g.g_fuel
  | None -> refill_interp t g ~upto:max_int);
  t.gen <- None;
  (* A finished materialized trace may be marshalled into the artifact
     cache: drop any recycled buffers so they are not serialized. *)
  t.free <- [];
  (t, g.g_state)

(** [stream ?fuel ?chunk_bits program] — a lazily generated trace whose
    chunks are recycled as the consumer {!release}s them. [chunk_bits]
    sizes chunks at [2^chunk_bits] entries (tests shrink it to force
    entries of interest across chunk boundaries). *)
let stream ?fuel ?chunk_bits program =
  create ?chunk_bits ~retain:false ~gen:(Some (mk_gen ?fuel program)) ()
