(** ISA-level dynamic profiling: per-branch execution/taken counts and
    instruction mix, computed from an architectural-mode run. Feeds the
    Table 4-style benchmark characterization. *)

open Wish_isa

type branch_stats = { mutable executed : int; mutable taken : int }

type t = {
  branches : (int, branch_stats) Hashtbl.t; (* pc -> stats, conditional only *)
  mutable dynamic_insts : int;
  mutable dynamic_cond_branches : int;
  mutable dynamic_wish_branches : int;
  mutable dynamic_wish_loops : int;
  mutable guard_false_insts : int;
  mutable loads : int;
  mutable stores : int;
}

let create () =
  {
    branches = Hashtbl.create 256;
    dynamic_insts = 0;
    dynamic_cond_branches = 0;
    dynamic_wish_branches = 0;
    dynamic_wish_loops = 0;
    guard_false_insts = 0;
    loads = 0;
    stores = 0;
  }

let branch_cell t pc =
  match Hashtbl.find_opt t.branches pc with
  | Some c -> c
  | None ->
    let c = { executed = 0; taken = 0 } in
    Hashtbl.add t.branches pc c;
    c

let record t code (o : Exec.out) =
  t.dynamic_insts <- t.dynamic_insts + 1;
  let guard_true = o.Exec.o_guard_true in
  if not guard_true then t.guard_false_insts <- t.guard_false_insts + 1;
  let i = Code.get code o.Exec.o_pc in
  (match i.op with
  | Inst.Load _ -> if guard_true then t.loads <- t.loads + 1
  | Inst.Store _ -> if guard_true then t.stores <- t.stores + 1
  | Inst.Branch { kind; _ } ->
    t.dynamic_cond_branches <- t.dynamic_cond_branches + 1;
    (match kind with
    | Inst.Cond -> ()
    | Inst.Wish_jump | Inst.Wish_join | Inst.Wish_loop ->
      t.dynamic_wish_branches <- t.dynamic_wish_branches + 1;
      if kind = Inst.Wish_loop then t.dynamic_wish_loops <- t.dynamic_wish_loops + 1);
    let c = branch_cell t o.Exec.o_pc in
    c.executed <- c.executed + 1;
    (* The architectural direction of a guarded branch is its guard. *)
    if guard_true then c.taken <- c.taken + 1
  | Inst.Alu _ | Inst.Cmp _ | Inst.Pset _ | Inst.Jump _ | Inst.Call _ | Inst.Return
  | Inst.Halt | Inst.Nop ->
    ())

(* Per-pc classification for the profiling sink: replaces the per-step
   [Code.get] + variant match of {!record} with one precomputed int. *)
let k_other = 0
and k_load = 1
and k_store = 2
and k_cond = 3
and k_wish = 4
and k_wish_loop = 5

let kind_table code =
  Array.init (Code.length code) (fun pc ->
      match (Code.get code pc).Inst.op with
      | Inst.Load _ -> k_load
      | Inst.Store _ -> k_store
      | Inst.Branch { kind = Inst.Cond; _ } -> k_cond
      | Inst.Branch { kind = Inst.Wish_jump | Inst.Wish_join; _ } -> k_wish
      | Inst.Branch { kind = Inst.Wish_loop; _ } -> k_wish_loop
      | Inst.Alu _ | Inst.Cmp _ | Inst.Pset _ | Inst.Jump _ | Inst.Call _ | Inst.Return
      | Inst.Halt | Inst.Nop ->
        k_other)

(** [of_program program] profiles a full architectural run through the
    compiled emulator ({!Trace.use_interpreter} falls back to the
    reference interpreter; the counts are identical either way). *)
let of_program ?(fuel = 200_000_000) program =
  let st = State.create program in
  let code = Program.code program in
  let t = create () in
  let kind = kind_table code in
  (* Same lazy-creation discipline as [branch_cell]: only branches that
     actually execute appear in the table. The array just caches the
     Hashtbl lookup per static pc. *)
  let cells = Array.make (max 1 (Code.length code)) None in
  let sink (o : Exec.out) =
    t.dynamic_insts <- t.dynamic_insts + 1;
    let guard_true = o.Exec.o_guard_true in
    if not guard_true then t.guard_false_insts <- t.guard_false_insts + 1;
    let pc = o.Exec.o_pc in
    let k = Array.unsafe_get kind pc in
    if k <> k_other then
      if k = k_load then (if guard_true then t.loads <- t.loads + 1)
      else if k = k_store then (if guard_true then t.stores <- t.stores + 1)
      else begin
        t.dynamic_cond_branches <- t.dynamic_cond_branches + 1;
        if k >= k_wish then begin
          t.dynamic_wish_branches <- t.dynamic_wish_branches + 1;
          if k = k_wish_loop then t.dynamic_wish_loops <- t.dynamic_wish_loops + 1
        end;
        let c =
          match Array.unsafe_get cells pc with
          | Some c -> c
          | None ->
            let c = branch_cell t pc in
            Array.unsafe_set cells pc (Some c);
            c
        in
        c.executed <- c.executed + 1;
        if guard_true then c.taken <- c.taken + 1
      end
  in
  let out = Exec.make_out () in
  if !Trace.use_interpreter then
    while not st.halted do
      if st.retired >= fuel then raise (Exec.Out_of_fuel fuel);
      Exec.step_into Exec.Architectural code st out;
      sink out
    done
  else begin
    let compiled = Compiled.compile ~mode:Exec.Architectural code in
    Compiled.run_to_halt compiled st out ~sink ~fuel
  end;
  (t, st)

let taken_rate t pc =
  match Hashtbl.find_opt t.branches pc with
  | None -> 0.0
  | Some c -> if c.executed = 0 then 0.0 else float_of_int c.taken /. float_of_int c.executed

let static_branch_count t = Hashtbl.length t.branches
