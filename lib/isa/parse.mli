(** Textual WISC assembly.

    The accepted syntax is exactly what {!Inst.pp} prints — so listings
    round-trip — plus labels ([name:]), [;] comments, [@N] numeric branch
    targets (as listings print), and the directives [.mem WORDS] and
    [.data ADDR VALUE]. See [examples/sad.wisc]. *)

exception Parse_error of { line : int; message : string }

(** [program_of_string ?name text] parses a full assembly file. Raises
    {!Parse_error} with a line number on malformed input, and the
    assembler/code-image exceptions on unresolved labels or invalid
    images. *)
val program_of_string : ?name:string -> string -> Program.t

(** [program_of_file path] reads and parses an assembly file. *)
val program_of_file : string -> Program.t

(** [listing_of_code code] prints a listing that {!program_of_string}
    accepts (numeric [@N] targets, one instruction per line). *)
val listing_of_code : Code.t -> string

(** [listing_of_program p] — [.mem]/[.data] directives plus the code
    listing: the lossless textual form of a whole program, accepted by
    {!program_of_string} (fuzzer repros are saved in this shape). Raises
    [Invalid_argument] if [p.entry] is nonzero — the textual syntax has
    no entry directive. *)
val listing_of_program : Program.t -> string
