(** Textual WISC assembly.

    The accepted syntax is exactly what {!Inst.pp} prints — so listings
    round-trip — plus labels, label targets, comments and data directives:

    {v
    ; comment                    .mem 4096        (data memory words)
    start:                       .data 100 42     (initialize mem[100])
        add r3, r0, #0
        (p1) s.mul r4, r3, #3    ; guard and speculation prefixes
        cmp.lt p1, p2 = r3, #10
        cmp.unc.eq p1 = r3, r4
        ld r7, [r6+4]
        st [r6+0], r7
        wish.jump start          ; or numeric, as listings print: @0
        halt
    v} *)

exception Parse_error of { line : int; message : string }

let error line fmt = Fmt.kstr (fun message -> raise (Parse_error { line; message })) fmt

(* Lexical helpers ----------------------------------------------------- *)

let strip_comment s = match String.index_opt s ';' with Some i -> String.sub s 0 i | None -> s
let trim = String.trim

let split_operands s =
  if trim s = "" then [] else String.split_on_char ',' s |> List.map trim

let parse_ireg ln s =
  let s = trim s in
  if String.length s >= 2 && s.[0] = 'r' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some n when Reg.is_valid_ireg n -> n
    | _ -> error ln "invalid integer register %S" s
  else error ln "expected integer register, got %S" s

let parse_preg ln s =
  let s = trim s in
  if String.length s >= 2 && s.[0] = 'p' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some n when Reg.is_valid_preg n -> n
    | _ -> error ln "invalid predicate register %S" s
  else error ln "expected predicate register, got %S" s

let parse_operand ln s =
  let s = trim s in
  if s = "" then error ln "missing operand"
  else if s.[0] = '#' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some n -> Inst.Imm n
    | None -> error ln "invalid immediate %S" s
  else Inst.Reg (parse_ireg ln s)

let aluops =
  [
    ("add", Inst.Add); ("sub", Inst.Sub); ("mul", Inst.Mul); ("and", Inst.And);
    ("or", Inst.Or); ("xor", Inst.Xor); ("shl", Inst.Shl); ("shr", Inst.Shr);
  ]

let cmpops =
  [ ("eq", Inst.Eq); ("ne", Inst.Ne); ("lt", Inst.Lt); ("le", Inst.Le); ("gt", Inst.Gt); ("ge", Inst.Ge) ]

(* [[r2+3]] address syntax. *)
let parse_addr ln s =
  let s = trim s in
  let n = String.length s in
  if n < 4 || s.[0] <> '[' || s.[n - 1] <> ']' then error ln "expected [rN+off], got %S" s
  else
    let inner = String.sub s 1 (n - 2) in
    match String.index_opt inner '+' with
    | Some i ->
      let base = parse_ireg ln (String.sub inner 0 i) in
      let off = trim (String.sub inner (i + 1) (String.length inner - i - 1)) in
      (match int_of_string_opt off with
      | Some offset -> (base, offset)
      | None -> error ln "invalid offset in %S" s)
    | None -> (parse_ireg ln inner, 0)

(* Instruction parsing -------------------------------------------------- *)

let split_mnemonic body =
  let body = trim body in
  match String.index_opt body ' ' with
  | Some i -> (String.sub body 0 i, trim (String.sub body (i + 1) (String.length body - i - 1)))
  | None -> (body, "")

let parse_cmp ln ~guard ~spec mnemonic rest =
  (* mnemonic: cmp.lt or cmp.unc.lt; rest: "p1, p2 = r3, #5". *)
  let unc, opname =
    match String.split_on_char '.' mnemonic with
    | [ "cmp"; op ] -> (false, op)
    | [ "cmp"; "unc"; op ] -> (true, op)
    | _ -> error ln "bad compare mnemonic %S" mnemonic
  in
  let op =
    match List.assoc_opt opname cmpops with
    | Some op -> op
    | None -> error ln "unknown compare op %S" opname
  in
  match String.index_opt rest '=' with
  | None -> error ln "compare needs '=': %S" rest
  | Some i ->
    let dests = split_operands (String.sub rest 0 i) in
    let srcs = split_operands (String.sub rest (i + 1) (String.length rest - i - 1)) in
    let dst_true, dst_false =
      match dests with
      | [ d ] -> (parse_preg ln d, None)
      | [ d; f ] -> (parse_preg ln d, Some (parse_preg ln f))
      | _ -> error ln "compare needs one or two destinations"
    in
    (match srcs with
    | [ a; b ] ->
      Asm.cmp ~guard ~spec ~unc op ?dst_false dst_true (parse_ireg ln a) (parse_operand ln b)
    | _ -> error ln "compare needs two sources")

(* Branch targets: either a label name or @N (numeric pc, as listings
   print); @N resolves through a synthetic label planted at pc N. *)
let parse_target ln s =
  let s = trim s in
  if s = "" then error ln "missing branch target" else s

let parse_inst ln body =
  let body = trim body in
  let guard, body =
    if String.length body > 0 && body.[0] = '(' then
      match String.index_opt body ')' with
      | Some i ->
        ( parse_preg ln (String.sub body 1 (i - 1)),
          trim (String.sub body (i + 1) (String.length body - i - 1)) )
      | None -> error ln "unterminated guard"
    else (Reg.p0, body)
  in
  (* The speculation prefix is exactly "s." — mnemonics like "st"/"shl"
     also start with s, hence the dot test. *)
  let spec, body =
    if String.length body > 2 && body.[0] = 's' && body.[1] = '.' then
      (true, String.sub body 2 (String.length body - 2))
    else (false, body)
  in
  let mnemonic, rest = split_mnemonic body in
  let two rest =
    match split_operands rest with
    | [ a; b ] -> (a, b)
    | _ -> error ln "expected two operands: %S" rest
  in
  let three rest =
    match split_operands rest with
    | [ a; b; c ] -> (a, b, c)
    | _ -> error ln "expected three operands: %S" rest
  in
  match mnemonic with
  | "nop" -> Asm.nop
  | "halt" -> Asm.halt
  | "ret" -> Asm.ret ~guard ()
  | "pset" ->
    let d, v = two rest in
    let value =
      match trim v with
      | "true" | "1" -> true
      | "false" | "0" -> false
      | s -> error ln "pset needs true/false, got %S" s
    in
    Asm.pset ~guard ~spec (parse_preg ln d) value
  | "ld" ->
    let d, a = two rest in
    let base, offset = parse_addr ln a in
    Asm.load ~guard ~spec (parse_ireg ln d) base offset
  | "st" ->
    let a, s = two rest in
    let base, offset = parse_addr ln a in
    Asm.store ~guard (parse_ireg ln s) base offset
  | "br" -> Asm.br ~guard (parse_target ln rest)
  | "wish.jump" -> Asm.wish_jump ~guard (parse_target ln rest)
  | "wish.join" -> Asm.wish_join ~guard (parse_target ln rest)
  | "wish.loop" -> Asm.wish_loop ~guard (parse_target ln rest)
  | "jmp" -> Asm.jmp ~guard (parse_target ln rest)
  | "call" -> Asm.call ~guard (parse_target ln rest)
  | m when List.mem_assoc m aluops ->
    let d, a, b = three rest in
    Asm.alu ~guard ~spec (List.assoc m aluops) (parse_ireg ln d) (parse_ireg ln a)
      (parse_operand ln b)
  | m when String.length m >= 4 && String.sub m 0 4 = "cmp." -> parse_cmp ln ~guard ~spec m rest
  | m -> error ln "unknown mnemonic %S" m

(* Program parsing ------------------------------------------------------ *)

type classified = Blank | Directive of string | Label_line of string | Inst_line of string

let classify raw =
  let line = trim (strip_comment raw) in
  if line = "" then Blank
  else if line.[0] = '.' then Directive line
  else if String.length line > 1 && line.[String.length line - 1] = ':' then
    Label_line (String.sub line 0 (String.length line - 1))
  else Inst_line line

(* Collect all numeric @N targets so synthetic labels can be planted. *)
let numeric_targets lines =
  let found = Hashtbl.create 8 in
  List.iter
    (fun raw ->
      match classify raw with
      | Inst_line line ->
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char ',')
        |> List.iter (fun tok ->
               let tok = trim tok in
               if String.length tok > 1 && tok.[0] = '@' then
                 match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
                 | Some n -> Hashtbl.replace found n ()
                 | None -> ())
      | Blank | Directive _ | Label_line _ -> ())
    lines;
  found

(** [program_of_string ?name text] parses a full assembly file. *)
let program_of_string ?(name = "asm") text =
  let lines = String.split_on_char '\n' text in
  let numeric = numeric_targets lines in
  let items = ref [] in
  let data = ref [] in
  let mem_words = ref None in
  let pc = ref 0 in
  List.iteri
    (fun idx raw ->
      let ln = idx + 1 in
      match classify raw with
      | Blank -> ()
      | Directive line -> (
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ ".mem"; n ] -> (
          match int_of_string_opt n with
          | Some w when w > 0 -> mem_words := Some w
          | _ -> error ln "invalid .mem size %S" n)
        | [ ".data"; addr; value ] -> (
          match (int_of_string_opt addr, int_of_string_opt value) with
          | Some a, Some v -> data := (a, v) :: !data
          | _ -> error ln "invalid .data directive")
        | _ -> error ln "unknown directive %S" line)
      | Label_line l -> items := Asm.label l :: !items
      | Inst_line line ->
        if Hashtbl.mem numeric !pc then begin
          items := Asm.label ("@" ^ string_of_int !pc) :: !items;
          Hashtbl.remove numeric !pc
        end;
        items := parse_inst ln line :: !items;
        incr pc)
    lines;
  if Hashtbl.length numeric > 0 then error 0 "numeric target beyond end of program";
  let code = Asm.assemble (List.rev !items) in
  Program.create ~name ?mem_words:!mem_words ~data:(List.rev !data) code

(** [program_of_file path] reads and parses an assembly file. *)
let program_of_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  program_of_string ~name:(Filename.basename path) text

(** [listing_of_code code] prints a parseable listing (numeric targets). *)
let listing_of_code code =
  let buf = Buffer.create 256 in
  Code.iteri code (fun _ i -> Buffer.add_string buf (Inst.to_string i ^ "\n"));
  Buffer.contents buf

(** [listing_of_program p] — the whole-program form: [.mem]/[.data]
    directives followed by the code listing, so the output feeds back
    into {!program_of_string} losslessly (entry must be 0, which is all
    the toolchain emits). *)
let listing_of_program (p : Program.t) =
  if p.Program.entry <> 0 then
    invalid_arg "Parse.listing_of_program: only entry-0 programs have a textual form";
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf ".mem %d\n" p.Program.mem_words);
  List.iter
    (fun (a, v) -> Buffer.add_string buf (Printf.sprintf ".data %d %d\n" a v))
    p.Program.data;
  Buffer.add_string buf (listing_of_code p.Program.code);
  Buffer.contents buf
