(** An assembled code image: instructions at consecutive PCs.

    PCs are instruction indices. For cache purposes every instruction
    occupies 4 bytes ([byte_pc]); with 64-byte I-cache lines this packs 16
    instructions per line. *)

type t = { insts : Inst.t array }

let bytes_per_inst = 4

(* One data word as seen by the cache hierarchy: emulator memory is
   word-addressed, caches are byte-addressed, and every scaling site
   (simulator data ports, sampled-run warming) must agree on the factor
   or cache-warming skews silently. *)
let word_bytes = 8

exception Invalid of string

let invalid fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

(* Every register index an instruction can touch, for image validation. *)
let reg_indices_ok (i : Inst.t) =
  let ok_i r = Reg.is_valid_ireg r in
  let ok_p p = Reg.is_valid_preg p in
  let ok_operand = function Inst.Reg r -> ok_i r | Inst.Imm _ -> true in
  ok_p i.guard
  &&
  match i.op with
  | Inst.Alu { dst; src1; src2; _ } -> ok_i dst && ok_i src1 && ok_operand src2
  | Inst.Cmp { dst_true; dst_false; src1; src2; _ } ->
    ok_p dst_true
    && (match dst_false with Some p -> ok_p p | None -> true)
    && ok_i src1 && ok_operand src2
  | Inst.Pset { dst; _ } -> ok_p dst
  | Inst.Load { dst; base; _ } -> ok_i dst && ok_i base
  | Inst.Store { src; base; _ } -> ok_i src && ok_i base
  | Inst.Branch _ | Inst.Jump _ | Inst.Call _ | Inst.Return | Inst.Halt | Inst.Nop -> true

(** [create insts] validates that all direct targets are in range, that
    every register index fits the register files, and that the image
    cannot run off the end (the last instruction must end control flow
    unconditionally). Emulator fast paths rely on this validation to use
    unchecked register/predicate accesses on any [Code.t]. *)
let create insts =
  let n = Array.length insts in
  if n = 0 then invalid "empty code image";
  Array.iteri
    (fun pc (i : Inst.t) ->
      (match Inst.direct_target i with
      | Some t when t < 0 || t >= n -> invalid "pc %d: branch target %d out of range" pc t
      | Some _ | None -> ());
      if not (reg_indices_ok i) then invalid "pc %d: register index out of range" pc;
      (* Speculated instructions may be skipped by hardware, so they must
         be free of irreversible effects. *)
      if i.spec && (Inst.writes_memory i || Inst.is_branch i) then
        invalid "pc %d: speculative mark on a store or branch" pc)
    insts;
  (match insts.(n - 1).op with
  | Inst.Halt | Inst.Return -> ()
  | Inst.Jump _ when insts.(n - 1).guard = Reg.p0 -> ()
  | _ -> invalid "last instruction must be halt, ret, or an unguarded jmp");
  { insts }

let length t = Array.length t.insts

let get t pc =
  if pc < 0 || pc >= Array.length t.insts then invalid "fetch from invalid pc %d" pc;
  t.insts.(pc)

let in_range t pc = pc >= 0 && pc < Array.length t.insts

let byte_pc pc = pc * bytes_per_inst

let iteri t f = Array.iteri f t.insts

(* ----------------------------------------------------------------- *)
(* Static basic-block structure                                       *)
(* ----------------------------------------------------------------- *)

(** [ends_block ?fuse_wish i] — does [i] terminate a basic block?
    Control transfers and halt do; with [fuse_wish] (the emulator's
    predicate-through mode, where wish jumps and wish joins always fall
    through) those two wish flavours become straight-line code and are
    fused into their surrounding block. Wish loops keep their real
    semantics in both regimes. *)
let ends_block ?(fuse_wish = false) (i : Inst.t) =
  match i.op with
  | Inst.Branch { kind = Inst.Wish_jump | Inst.Wish_join; _ } -> not fuse_wish
  | Inst.Branch _ | Inst.Jump _ | Inst.Call _ | Inst.Return | Inst.Halt -> true
  | Inst.Alu _ | Inst.Cmp _ | Inst.Pset _ | Inst.Load _ | Inst.Store _ | Inst.Nop -> false

(** [block_leaders ?fuse_wish t] — per-pc leader flags: entry 0, every
    direct branch/jump/call target (wish join points included — they are
    targets), and the fall-through successor of every block-ending
    instruction. Return targets are call fall-throughs, already leaders. *)
let block_leaders ?fuse_wish t =
  let n = Array.length t.insts in
  let leaders = Array.make n false in
  leaders.(0) <- true;
  Array.iteri
    (fun pc (i : Inst.t) ->
      (match Inst.direct_target i with Some tgt -> leaders.(tgt) <- true | None -> ());
      if ends_block ?fuse_wish i && pc + 1 < n then leaders.(pc + 1) <- true)
    t.insts;
  leaders

(** [block_count ?fuse_wish t] — number of static basic blocks. *)
let block_count ?fuse_wish t =
  Array.fold_left (fun acc l -> if l then acc + 1 else acc) 0 (block_leaders ?fuse_wish t)

(** Static counts used by Table 4-style reports. *)
let count t p = Array.fold_left (fun acc i -> if p i then acc + 1 else acc) 0 t.insts

let static_conditional_branches t = count t Inst.is_conditional
let static_wish_branches t = count t Inst.is_wish

let static_wish_loops t =
  count t (fun i -> Inst.branch_kind i = Some Inst.Wish_loop)

let pp ppf t =
  Array.iteri (fun pc i -> Fmt.pf ppf "%4d: %a@." pc Inst.pp i) t.insts
