(** An assembled code image: instructions at consecutive PCs.

    PCs are instruction indices. For cache purposes every instruction
    occupies {!bytes_per_inst} bytes ([byte_pc]); with 64-byte I-cache
    lines this packs 16 instructions per line. *)

type t

val bytes_per_inst : int

(** Bytes per data word: the one shared scale between word-addressed
    emulator memory and the byte-addressed cache hierarchy. *)
val word_bytes : int

exception Invalid of string

(** [create insts] validates the image: all direct targets in range,
    every register index within the register files, and the last
    instruction must end control flow unconditionally ([halt], [ret], or
    an unguarded [jmp]). Raises {!Invalid} otherwise. Emulator fast
    paths rely on this validation to use unchecked register/predicate
    accesses on any [Code.t]. *)
val create : Inst.t array -> t

val length : t -> int

(** [get t pc] — raises {!Invalid} out of range. *)
val get : t -> int -> Inst.t

val in_range : t -> int -> bool
val byte_pc : int -> int
val iteri : t -> (int -> Inst.t -> unit) -> unit

(** Static basic-block structure, shared by the pre-decoding emulator
    and block-level reports. [fuse_wish] models the emulator's
    predicate-through regime, where wish jumps/joins always fall through
    and so no longer end blocks (wish loops still do). *)

val ends_block : ?fuse_wish:bool -> Inst.t -> bool

(** [block_leaders ?fuse_wish t] — per-pc flags: entry 0, direct branch
    targets (wish join points included), and fall-throughs after every
    block-ending instruction. *)
val block_leaders : ?fuse_wish:bool -> t -> bool array

val block_count : ?fuse_wish:bool -> t -> int

(** [count t p] — static instruction census. *)
val count : t -> (Inst.t -> bool) -> int

val static_conditional_branches : t -> int
val static_wish_branches : t -> int
val static_wish_loops : t -> int
val pp : Format.formatter -> t -> unit
