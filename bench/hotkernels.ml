(* The tiny hammock kernel shared by the hot-path harnesses: hotloop.exe
   (which owns BENCH_hotloop.json) and perfgate.exe (which re-times the
   same cases against that baseline). One definition keeps the two
   measuring the same work. *)

let tiny_hammock ~wish =
  let open Wish_isa in
  let hb ~guard l = if wish then Asm.wish_jump ~guard l else Asm.br ~guard l in
  let items =
    Asm.[
      movi 3 0;
      movi 4 0;
      label "loop";
      alu Inst.And 6 3 (Inst.Imm 255);
      load 7 6 64;
      cmp Inst.Eq ~dst_false:2 1 7 (Inst.Imm 1);
      hb ~guard:1 "then_";
      alu ~guard:2 Inst.Add 4 4 (Inst.Reg 7);
      alu ~guard:2 Inst.Xor 4 4 (Inst.Imm 3);
      (if wish then Asm.wish_join ~guard:2 "join" else Asm.jmp "join");
      label "then_";
      alu ~guard:1 Inst.Sub 4 4 (Inst.Imm 7);
      alu ~guard:1 Inst.Xor 4 4 (Inst.Imm 11);
      label "join";
      alu Inst.Add 3 3 (Inst.Imm 1);
      cmp Inst.Lt 1 3 (Inst.Imm 64);
      br ~guard:1 "loop";
      halt;
    ]
  in
  let rng = Wish_util.Rng.create 5 in
  let data = List.init 256 (fun k -> (64 + k, Wish_util.Rng.int rng 2)) in
  Wish_isa.Program.create ~mem_words:4096 ~data (Wish_isa.Asm.assemble items)

(* The BENCH_hotloop.json case list: name, machine configuration, and
   whether the kernel uses wish branches. *)
let cases =
  [
    ("fig10", Wish_sim.Config.default, true);
    ("fig14", Wish_sim.Config.with_rob Wish_sim.Config.default 128, true);
    ("fig1", Wish_sim.Config.default, false);
  ]
