(* Service smoke: start a wishd daemon in a temp dir with the
   [svc.worker] faultpoint armed (two worker kills), point two
   concurrent clients at the same fig10 gzip-only matrix, and require:
   byte-identical tables from both clients AND from a local in-process
   render; a single-flight dedup counter >= 1 (the second client
   coalesced onto the first's in-flight jobs); worker respawns >= 1 (the
   injected deaths were survived, not avoided); and a clean SIGINT
   shutdown (daemon exits 0, socket file unlinked). Wired into
   [dune runtest] via the @svc-smoke alias. *)

module FP = Wish_util.Faultpoint
module Table = Wish_util.Table
module J = Wish_util.Perf_json
module Lab = Wish_experiments.Lab
module Figures = Wish_experiments.Figures
module Service = Wish_experiments.Service

let root =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "wishsvc_smoke_%d" (Unix.getpid ()))

let rec rm_rf d =
  if Sys.file_exists d then
    if Sys.is_directory d then begin
      Array.iter (fun f -> rm_rf (Filename.concat d f)) (Sys.readdir d);
      try Sys.rmdir d with Sys_error _ -> ()
    end
    else try Sys.remove d with Sys_error _ -> ()

let fail fmt = Printf.ksprintf (fun s -> Printf.eprintf "FAIL: %s\n%!" s; exit 1) fmt

let socket = Filename.concat root "wishd.sock"
let cache_dir = Filename.concat root "cache"
let spec =
  {
    Service.sp_artifacts = [ "fig10" ];
    sp_scale = 1;
    sp_benchmarks = [ "gzip" ];
    sp_sample = None;
  }

(* Child: the daemon, with two worker kills scheduled. [serve] arms no
   faults itself; the injection decision runs in the daemon process
   (Procpool.try_submit), so the armed counter is not consumed by the
   workers' forked copies. *)
let daemon_main () =
  ignore (Unix.alarm 300);
  FP.arm "svc.worker" ~times:2;
  Service.serve ~workers:2 ~socket ~cache_dir ();
  exit 0

(* Child: one client; writes the streamed table text to [out]. *)
let client_main out =
  ignore (Unix.alarm 300);
  match Service.connect ~socket with
  | Error e ->
    Printf.eprintf "client: connect: %s\n%!" e;
    exit 3
  | Ok c -> (
    let buf = Buffer.create 1024 in
    let r =
      Service.run_remote c ~spec
        ~on_table:(fun ~artifact:_ ~text ~csv:_ -> Buffer.add_string buf text)
        ()
    in
    Service.close c;
    match r with
    | Ok _ ->
      let oc = open_out out in
      output_string oc (Buffer.contents buf);
      close_out oc;
      exit 0
    | Error e ->
      Printf.eprintf "client: run: %s\n%!" e;
      exit 4)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Ready when a real hello round-trip succeeds — a bare socket-file poll
   can race the daemon between bind and listen, or see a slow start. *)
let wait_ready daemon_pid =
  let ready = ref false and tries = ref 0 in
  while (not !ready) && !tries < 1200 do
    incr tries;
    (match Unix.waitpid [ Unix.WNOHANG ] daemon_pid with
    | 0, _ -> ()
    | _ -> fail "daemon died during startup");
    (match Service.connect ~socket with
    | Ok c ->
      Service.close c;
      ready := true
    | Error _ -> ignore (Unix.select [] [] [] 0.05))
  done;
  if not !ready then fail "daemon never came up on %s" socket

let () =
  ignore (Unix.alarm 300);
  rm_rf root;
  Unix.mkdir root 0o755;
  let daemon_pid =
    match Unix.fork () with 0 -> daemon_main () | pid -> pid
  in
  (* Never leak the daemon (and its workers): whatever happens, it dies
     with this process. A clean SIGINT exit below makes this a no-op. *)
  Fun.protect ~finally:(fun () ->
      (try Unix.kill daemon_pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] daemon_pid) with Unix.Unix_error _ -> ());
      rm_rf root)
  @@ fun () ->
  wait_ready daemon_pid;
  let out1 = Filename.concat root "c1.out"
  and out2 = Filename.concat root "c2.out" in
  let c1 = match Unix.fork () with 0 -> client_main out1 | pid -> pid in
  let c2 = match Unix.fork () with 0 -> client_main out2 | pid -> pid in
  let reap name pid =
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED 0 -> ()
    | _, Unix.WEXITED n -> fail "%s exited %d" name n
    | _, Unix.WSIGNALED n -> fail "%s killed by signal %d" name n
    | _, Unix.WSTOPPED _ -> fail "%s stopped" name
  in
  reap "client 1" c1;
  reap "client 2" c2;
  let t1 = read_file out1 and t2 = read_file out2 in
  if not (String.equal t1 t2) then
    fail "clients disagree:\n%s\n--- vs ---\n%s" t1 t2;
  (* The local reference: same matrix, same serial rendering path, its
     own process and cache — what `experiments fig10 -b gzip` prints. *)
  let lab = Lab.create ~names:[ "gzip" ] () in
  let expected =
    Fun.protect ~finally:(fun () -> Lab.shutdown lab) @@ fun () ->
    Table.render (Figures.fig10 lab)
  in
  if not (String.equal t1 expected) then
    fail "daemon table differs from local render:\n%s\n--- vs ---\n%s" t1 expected;
  (* Counters: the second client must have coalesced (single-flight), and
     the injected worker deaths must have forced respawns. *)
  (let c = match Service.connect ~socket with Ok c -> c | Error e -> fail "stats connect: %s" e in
   let stats = match Service.stats_remote c with Ok s -> s | Error e -> fail "stats: %s" e in
   Service.close c;
   let geti k =
     match J.member k stats with Some (J.Int i) -> i | _ -> fail "stats lacks %s" k
   in
   let dedup = geti "dedup_hits" and respawns = geti "respawns" in
   Printf.printf
     "svc smoke: %d job(s) requested, %d computed, %d dedup, %d cache, %d respawn(s)\n%!"
     (geti "jobs_requested") (geti "computed") dedup (geti "cache_hits") respawns;
   if dedup < 1 then fail "expected dedup_hits >= 1, saw %d" dedup;
   if respawns < 1 then fail "expected respawns >= 1 under svc.worker faults, saw %d" respawns);
  (* Clean SIGINT shutdown: exit 0, socket unlinked. *)
  Unix.kill daemon_pid Sys.sigint;
  (match Unix.waitpid [] daemon_pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> fail "daemon exited %d on SIGINT" n
  | _, Unix.WSIGNALED n -> fail "daemon killed by signal %d" n
  | _, Unix.WSTOPPED _ -> fail "daemon stopped");
  if Sys.file_exists socket then fail "daemon left its socket file behind";
  print_endline "svc smoke OK: byte-identical tables, single-flight dedup, clean shutdown"
