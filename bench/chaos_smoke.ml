(* Chaos smoke: regenerate Figure 10 (gzip-only grid, two worker
   domains, cold persistent cache) with a hostile fault schedule armed —
   a worker domain dying mid-task, a compile and a trace crash, three
   simulation crashes, and a torn cache write — then regenerate it again
   fault-free from the survivors' cache/journal, and fail unless both
   tables come out byte-identical. This is the end-to-end version of the
   @chaos alcotest suite: one run through the real driver stack proving
   the supervision layer converges to exactly the clean answer. Wired
   into [dune runtest] via the @chaos-smoke alias. *)

module FP = Wish_util.Faultpoint
module Table = Wish_util.Table
module Lab = Wish_experiments.Lab
module Cache = Wish_experiments.Cache
module Figures = Wish_experiments.Figures

let cache_dir =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "wishchaos_smoke_%d" (Unix.getpid ()))

let rec rm_rf d =
  if Sys.file_exists d then
    if Sys.is_directory d then begin
      Array.iter (fun f -> rm_rf (Filename.concat d f)) (Sys.readdir d);
      try Sys.rmdir d with Sys_error _ -> ()
    end
    else try Sys.remove d with Sys_error _ -> ()

let policy = { Lab.default_policy with backoff = 0.001 }

let fig10_run ~resume faults =
  Fun.protect ~finally:FP.reset @@ fun () ->
  let lab = Lab.create ~names:[ "gzip" ] ~jobs:2 ~cache:(Cache.create ~dir:cache_dir ()) ~resume () in
  Fun.protect ~finally:(fun () -> Lab.shutdown lab) @@ fun () ->
  List.iter (fun (site, times) -> FP.arm site ~times) faults;
  Lab.prewarm ~policy lab (Figures.jobs_for "fig10" lab);
  List.iter
    (fun (site, _) ->
      if FP.injected site = 0 then (
        Printf.eprintf "FAIL: armed faultpoint %s never injected\n" site;
        exit 1))
    faults;
  (Table.to_csv (Figures.fig10 lab), Lab.batch_stats lab)

let () =
  rm_rf cache_dir;
  Fun.protect ~finally:(fun () -> rm_rf cache_dir) @@ fun () ->
  let chaotic, st =
    fig10_run ~resume:false
      [
        ("pool.worker", 1);
        ("lab.compile", 1);
        ("lab.trace", 1);
        ("lab.simulate", 3);
        ("cache.write.torn", 1);
      ]
  in
  Printf.printf
    "chaos run: %d task(s) executed, %d retried, %d failed (must be 0), 7 faults injected\n%!"
    st.executed st.retried st.failed;
  if st.failed > 0 then (
    Printf.eprintf "FAIL: a job exhausted its retry budget under the smoke schedule\n";
    exit 1);
  if st.retried < 5 then (
    Printf.eprintf "FAIL: expected at least 5 retries, saw %d\n" st.retried;
    exit 1);
  (* Second run: no faults, warm cache + journal from the chaotic run.
     The torn entry must quarantine-and-recompute transparently; the
     rest must resume/hit. *)
  let clean, st2 = fig10_run ~resume:true [] in
  Printf.printf "clean rerun: %d task(s) executed, %d cache hit(s), %d resumed\n%!" st2.executed
    st2.cache_hits st2.resumed;
  if st2.resumed = 0 then (
    Printf.eprintf "FAIL: nothing resumed from the chaotic run's journal\n";
    exit 1);
  if String.equal chaotic clean then print_endline "chaos smoke OK: fig10 byte-identical"
  else (
    Printf.eprintf "FAIL: fig10 differs between chaotic and clean runs\n%s\n--- vs ---\n%s\n"
      chaotic clean;
    exit 1)
