(* Performance regression gate: re-times a representative case from each
   recorded BENCH_*.json baseline (machine-local, gitignored — written
   by simloop.exe / emuloop.exe / sampleloop.exe) and fails (exit 1) when the fresh
   compiled-path reading exceeds baseline × tolerance.

   The smoke aliases in runtest guard *correctness* plus a conservative
   relative floor (compiled vs interp in the same process); this gate is
   the *absolute* check — it catches a quietly regressed compiled path
   whose interp twin regressed with it. Because it compares against
   numbers measured on a possibly different (and possibly loaded)
   machine, the default tolerance band is generous and the gate is not
   wired into runtest; run it by hand or from a perf CI lane:

     dune build bench/perfgate.exe && ./_build/default/bench/perfgate.exe

   from the repository root (the baselines are read from the cwd).
   Usage: perfgate.exe [--gc-tune] [--tol X] [--sim-iters N] [--emu-iters N]
   [--hot-iters N] [--sample-iters N] (defaults: tol 1.6, 8 sim runs, 3
   emu runs, 30 hot runs, 3 sample runs per case; timed work is a small
   representative subset, not the full matrices — simloop.exe,
   emuloop.exe, sampleloop.exe, and hotloop.exe remain the owners of the
   baseline files). *)

module J = Wish_util.Perf_json
module Gc_stats = Wish_util.Gc_stats
module Core = Wish_sim.Core
module Runner = Wish_sim.Runner
module Exec = Wish_emu.Exec
module State = Wish_emu.State
module Policy = Wish_compiler.Policy

let failures = ref 0

let gate ~tol ~label ~baseline ~fresh =
  let ratio = fresh /. baseline in
  let ok = ratio <= tol in
  if not ok then incr failures;
  Printf.printf "%-28s baseline %9.0f ns  fresh %9.0f ns  ratio %4.2f (tol %.2f)  %s\n%!"
    label baseline fresh ratio tol
    (if ok then "ok" else "REGRESSION")
  [@ocamlformat "disable"]

(* Baseline lookup: cases.<case>.<field> as a float, with distinct
   diagnostics for a missing case and a missing field. *)
let baseline_of json ~file ~case ~field =
  match J.member "cases" json with
  | None -> Error (Printf.sprintf "%s: no \"cases\" object" file)
  | Some cases -> (
    match J.member case cases with
    | None -> Error (Printf.sprintf "%s: no case %S" file case)
    | Some c -> (
      match Option.bind (J.member field c) J.to_float_opt with
      | None -> Error (Printf.sprintf "%s: case %S has no numeric %S" file case field)
      | Some v -> Ok v))

let scale_of json ~default =
  match Option.bind (J.member "scale" json) J.to_float_opt with
  | Some s -> int_of_float s
  | None -> default

(* Best-of-[iters] timing (plus one untimed warmup): the minimum is the
   reading least polluted by scheduler interference, matching how the
   baselines themselves were reduced. *)
let best_ns ~iters f =
  f ();
  let best = ref infinity in
  for _ = 1 to iters do
    let t0 = Sys.time () in
    f ();
    best := min !best (1e9 *. (Sys.time () -. t0))
  done;
  !best

let program_for ~scale name kind =
  let bench = Wish_workloads.Workloads.find ~scale name in
  let bins =
    Wish_compiler.Compiler.compile_all ~mem_words:bench.mem_words ~name:bench.name
      ~profile_data:(Wish_workloads.Bench.profile_data bench) bench.ast
  in
  Wish_workloads.Bench.program_for bench (Wish_compiler.Compiler.binary bins kind) "A"

(* ----------------------------------------------------------------- *)
(* Simulator gate: fresh compiled_ns_per_run vs BENCH_sim.json        *)
(* ----------------------------------------------------------------- *)

let sim_cases = [ ("gzip", Policy.Wish_jjl); ("mcf", Policy.Base_max) ]

let gate_sim ~tol ~iters json =
  let scale = scale_of json ~default:1 in
  let config = Wish_sim.Config.default in
  Core.use_compiled := true;
  List.iter
    (fun (name, kind) ->
      let case = Printf.sprintf "%s_%s" name (Policy.kind_name kind) in
      match baseline_of json ~file:"BENCH_sim.json" ~case ~field:"compiled_ns_per_run" with
      | Error msg ->
        incr failures;
        Printf.printf "%-28s %s\n%!" ("sim:" ^ case) msg
      | Ok baseline ->
        let program = program_for ~scale name kind in
        let trace, _final = Wish_emu.Trace.generate program in
        let fresh =
          best_ns ~iters (fun () -> ignore (Runner.simulate ~config ~trace program))
        in
        gate ~tol ~label:("sim:" ^ case) ~baseline ~fresh)
    sim_cases

(* ----------------------------------------------------------------- *)
(* Emulator gate: fresh compiled_ns_per_inst vs BENCH_emu.json        *)
(* ----------------------------------------------------------------- *)

let emu_cases = [ ("gzip", Exec.Architectural) ]

let gate_emu ~tol ~iters json =
  let scale = scale_of json ~default:10 in
  List.iter
    (fun (name, mode) ->
      let tag = match mode with Exec.Architectural -> "arch" | Exec.Predicate_through -> "pt" in
      let case = Printf.sprintf "%s_%s" name tag in
      match baseline_of json ~file:"BENCH_emu.json" ~case ~field:"compiled_ns_per_inst" with
      | Error msg ->
        incr failures;
        Printf.printf "%-28s %s\n%!" ("emu:" ^ case) msg
      | Ok baseline ->
        let program = program_for ~scale name Policy.Wish_jjl in
        let compiled = Wish_emu.Compiled.compile ~mode (Wish_isa.Program.code program) in
        let o = Exec.make_out () in
        let retired = ref 0 in
        let fresh_run =
          best_ns ~iters (fun () ->
              let st = State.create program in
              Wish_emu.Compiled.run_to_halt compiled st o ~sink:Wish_emu.Compiled.no_sink
                ~fuel:max_int;
              retired := st.State.retired)
        in
        (* Per-inst like the baseline; state creation rides inside the
           timed region but is noise at scale-10 instruction counts. *)
        let fresh = fresh_run /. float_of_int (max 1 !retired) in
        gate ~tol ~label:("emu:" ^ case) ~baseline ~fresh)
    emu_cases

(* ----------------------------------------------------------------- *)
(* Sampled-warming gate: fresh fused_ns_per_inst vs BENCH_sample.json *)
(* ----------------------------------------------------------------- *)

(* Re-times the fused (trace-free) warming path end to end — the same
   whole-pipeline measurement sampleloop.exe records — on one
   representative workload per baseline case. *)
let sample_cases = [ "gzip"; "mcf" ]

let gate_sample ~tol ~iters json =
  let scale = scale_of json ~default:10 in
  let config = Wish_sim.Config.default in
  List.iter
    (fun name ->
      match baseline_of json ~file:"BENCH_sample.json" ~case:name ~field:"fused_ns_per_inst" with
      | Error msg ->
        incr failures;
        Printf.printf "%-28s %s\n%!" ("sample:" ^ name) msg
      | Ok baseline ->
        let program = program_for ~scale name Policy.Wish_jjl in
        (* Same fixed sparse spec as sampleloop (see Sample_spec), so
           gate and baseline measure the same pipeline. One untimed
           materialized trace pins the dynamic length for the ns/inst
           normalization, exactly as sampleloop does. *)
        let trace, _final = Wish_emu.Trace.generate program in
        let total = Wish_emu.Trace.length trace in
        let spec = Sample_spec.spec in
        let fresh_run =
          best_ns ~iters (fun () ->
              ignore (Wish_sim.Sampler.run_fused ~config ~spec program))
        in
        let fresh = fresh_run /. float_of_int (max 1 total) in
        gate ~tol ~label:("sample:" ^ name) ~baseline ~fresh)
    sample_cases

(* ----------------------------------------------------------------- *)
(* Hot-loop gate: fresh ns_per_run vs BENCH_hotloop.json              *)
(* ----------------------------------------------------------------- *)

(* The same tiny-hammock cases hotloop.exe records (the shared kernel in
   Hotkernels keeps both harnesses honest). The baseline's reduction is
   a mean over hundreds of runs; best-of here biases the fresh reading
   low, which the tolerance band absorbs. *)
let gate_hotloop ~tol ~iters json =
  Core.use_compiled := true;
  List.iter
    (fun (case, config, wish) ->
      match baseline_of json ~file:"BENCH_hotloop.json" ~case ~field:"ns_per_run" with
      | Error msg ->
        incr failures;
        Printf.printf "%-28s %s\n%!" ("hot:" ^ case) msg
      | Ok baseline ->
        let program = Hotkernels.tiny_hammock ~wish in
        let trace, _final = Wish_emu.Trace.generate program in
        let fresh =
          best_ns ~iters (fun () -> ignore (Runner.simulate ~config ~trace program))
        in
        gate ~tol ~label:("hot:" ^ case) ~baseline ~fresh)
    Hotkernels.cases

let () =
  let rec parse (tol, sim_iters, emu_iters, hot_iters, sample_iters, tune) = function
    | [] -> (tol, sim_iters, emu_iters, hot_iters, sample_iters, tune)
    | "--tol" :: v :: rest ->
      parse (float_of_string v, sim_iters, emu_iters, hot_iters, sample_iters, tune) rest
    | "--sim-iters" :: v :: rest ->
      parse (tol, int_of_string v, emu_iters, hot_iters, sample_iters, tune) rest
    | "--emu-iters" :: v :: rest ->
      parse (tol, sim_iters, int_of_string v, hot_iters, sample_iters, tune) rest
    | "--hot-iters" :: v :: rest ->
      parse (tol, sim_iters, emu_iters, int_of_string v, sample_iters, tune) rest
    | "--sample-iters" :: v :: rest ->
      parse (tol, sim_iters, emu_iters, hot_iters, int_of_string v, tune) rest
    | "--gc-tune" :: rest -> parse (tol, sim_iters, emu_iters, hot_iters, sample_iters, true) rest
    | a :: _ ->
      Printf.eprintf "perfgate: unknown argument %s\n" a;
      exit 2
  in
  let tol, sim_iters, emu_iters, hot_iters, sample_iters, gc_tune =
    parse (1.6, 8, 3, 30, 3, false) (List.tl (Array.to_list Sys.argv))
  in
  if gc_tune then Gc_stats.tune ();
  (* Missing and malformed baselines are different situations: the first
     means "never measured on this machine", the second means the file on
     disk is damaged (torn write, manual edit) — [J.read_file] is total,
     so a damaged file surfaces here as a message, never a crash. *)
  let with_baseline file k =
    match J.read_file file with
    | Ok json -> k json
    | Error msg ->
      incr failures;
      if Sys.file_exists file then
        Printf.printf
          "%-28s malformed baseline: %s (delete it or regenerate with the matching bench \
           harness)\n\
           %!"
          file msg
      else
        Printf.printf "%-28s missing baseline: %s (regenerate with the matching bench harness)\n%!"
          file msg
  in
  with_baseline "BENCH_sim.json" (gate_sim ~tol ~iters:sim_iters);
  with_baseline "BENCH_emu.json" (gate_emu ~tol ~iters:emu_iters);
  with_baseline "BENCH_sample.json" (gate_sample ~tol ~iters:sample_iters);
  with_baseline "BENCH_hotloop.json" (gate_hotloop ~tol ~iters:hot_iters);
  if !failures > 0 then begin
    Printf.printf "perfgate: %d failure(s)\n%!" !failures;
    exit 1
  end;
  Printf.printf "perfgate: ok\n%!"
