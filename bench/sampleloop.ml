(* CPU-time A/B harness for sampled-simulation warming: runs gzip and
   mcf (wish-jjl, input A) through a whole sampled run — functional
   warming plus detailed measurement windows — along the three
   end-to-end paths

     trace    Trace.generate (materialize every entry) + Sampler.run
     stream   Trace.stream (bounded-memory chunks)     + Sampler.run
     fused    Sampler.run_fused — warming hooks fused into the compiled
              emulator, trace chunks materialized only for window spans

   plus a warm-phase-only A/B (state at end-of-trace from nothing,
   trace-based vs fused, no detailed windows) that isolates warming
   throughput from the detailed-simulation time every path shares.

   Each case first does an untimed identity gate requiring all three
   paths to agree on the full sampling report (windows, estimates, CIs,
   warming-cache stats) bit for bit; the timed region then measures the
   whole pipeline including trace generation, which is the point — the
   fused path's win is never encoding the warm-gap entries at all.
   Reports ns per trace entry and GC pressure per path plus the
   fused-vs-trace speedups (end-to-end and warm-phase), and tracks
   minor words per functionally warmed instruction for the fused path.
   Twin JSON report in BENCH_sample.json.
   Usage: sampleloop.exe [--gc-tune] [--scale N] [ITERS]
   (defaults: scale 10, 3 timed runs per case and path). *)

module Gc_stats = Wish_util.Gc_stats
module Sampler = Wish_sim.Sampler
module Trace = Wish_emu.Trace

let program_for ~scale name =
  let bench = Wish_workloads.Workloads.find ~scale name in
  let bins =
    Wish_compiler.Compiler.compile_all ~mem_words:bench.mem_words ~name:bench.name
      ~profile_data:(Wish_workloads.Bench.profile_data bench) bench.ast
  in
  Wish_workloads.Bench.program_for bench
    (Wish_compiler.Compiler.binary bins Wish_compiler.Policy.Wish_jjl)
    "A"

(* Time the paths interleaved (one timed run per path per cycle, [iters]
   cycles, one untimed warmup each) so a slow window on a shared box
   taxes all paths alike. Best (minimum) segment per path is reported,
   the reading least polluted by scheduler interference. *)
let time_paths ~iters (fs : (unit -> unit) array) =
  let n = Array.length fs in
  Array.iter (fun f -> f ()) fs;
  let best = Array.make n infinity and minor = Array.make n 0.0 in
  for _ = 1 to max 1 iters do
    Array.iteri
      (fun j f ->
        let g0 = Gc_stats.snapshot () in
        let t0 = Sys.time () in
        f ();
        best.(j) <- min best.(j) (1e9 *. (Sys.time () -. t0));
        minor.(j) <- minor.(j) +. (Gc_stats.diff g0 (Gc_stats.snapshot ())).Gc_stats.minor_words)
      fs
  done;
  Array.init n (fun j -> (best.(j), minor.(j) /. float_of_int (max 1 iters)))

let bench_case ~iters ~scale name =
  let program = program_for ~scale name in
  let config = Wish_sim.Config.default in
  (* One materialized trace pins the dynamic length and anchors the
     untimed identity gate. The spec is the fixed sparse one shared
     with perfgate (see Sample_spec). *)
  let trace, _final = Trace.generate program in
  let total = Trace.length trace in
  let spec = Sample_spec.spec in
  let reference = Sampler.run ~config ~spec program trace in
  let gate label r =
    (* [compare] rather than [=]: an equal-but-NaN CI still counts. *)
    if compare r reference <> 0 then begin
      Printf.eprintf "FAIL %s: %s sampled report differs from trace-based\n" name label;
      exit 1
    end
  in
  gate "streamed" (Sampler.run ~config ~spec program (Trace.stream program));
  gate "fused" (Sampler.run_fused ~config ~spec program);
  let timings =
    time_paths ~iters
      [|
        (fun () ->
          let t, _ = Trace.generate program in
          ignore (Sampler.run ~config ~spec program t));
        (fun () -> ignore (Sampler.run ~config ~spec program (Trace.stream program)));
        (fun () -> ignore (Sampler.run_fused ~config ~spec program));
        (* Warm phase alone (state at end-of-trace from nothing, no
           detailed windows): the tentpole's own metric, undiluted by
           the detailed-simulation time both paths share. *)
        (fun () ->
          let t, _ = Trace.generate program in
          ignore (Sampler.warm_state_at ~config program t total));
        (fun () -> ignore (Sampler.fused_warm_state_at ~config program total));
      |]
  in
  let per_inst ns = ns /. float_of_int total in
  let t_ns, t_mw = timings.(0) in
  let s_ns, s_mw = timings.(1) in
  let f_ns, f_mw = timings.(2) in
  let wt_ns, _ = timings.(3) in
  let wf_ns, _ = timings.(4) in
  (* Functionally warmed instructions: everything outside the measured
     windows (window leads are a few percent of that and ride along). *)
  let warmed = max 1 (total - reference.Sampler.r_measured_entries) in
  let f_mw_warm = f_mw /. float_of_int warmed in
  let speedup = t_ns /. f_ns in
  let warm_speedup = wt_ns /. wf_ns in
  Printf.printf
    "%-6s %9d insts (%2d windows, %4.1f%% measured)  trace %6.1f ns/i  stream %6.1f ns/i  fused %6.1f ns/i  %5.2fx e2e  %5.2fx warm (%4.1f Mi/s)\n%!"
    name total
    (List.length reference.Sampler.r_windows)
    (100.0 *. float_of_int reference.Sampler.r_measured_entries /. float_of_int total)
    (per_inst t_ns) (per_inst s_ns) (per_inst f_ns) speedup warm_speedup
    (1e3 /. per_inst wf_ns)
  [@ocamlformat "disable"];
  let open Wish_util.Perf_json in
  ( speedup,
    ( name,
      Obj
        [
          ("insts", Int total);
          ("windows", Int (List.length reference.Sampler.r_windows));
          ("measured_entries", Int reference.Sampler.r_measured_entries);
          ("warmed_insts", Int warmed);
          ("trace_ns_per_inst", Float (per_inst t_ns));
          ("trace_minor_words_per_inst", Float (t_mw /. float_of_int total));
          ("stream_ns_per_inst", Float (per_inst s_ns));
          ("stream_minor_words_per_inst", Float (s_mw /. float_of_int total));
          ("fused_ns_per_inst", Float (per_inst f_ns));
          ("fused_minor_words_per_inst", Float (f_mw /. float_of_int total));
          ("fused_minor_words_per_warmed_inst", Float f_mw_warm);
          ("fused_minsts_per_s", Float (1e3 /. per_inst f_ns));
          ("warm_trace_ns_per_inst", Float (per_inst wt_ns));
          ("warm_fused_ns_per_inst", Float (per_inst wf_ns));
          ("warm_fused_minsts_per_s", Float (1e3 /. per_inst wf_ns));
          ("speedup_vs_trace", Float speedup);
          ("speedup_vs_stream", Float (s_ns /. f_ns));
          ("warm_speedup", Float warm_speedup);
        ] ) )

let () =
  let rec parse (scale, iters, tune) = function
    | [] -> (scale, iters, tune)
    | "--scale" :: v :: rest -> parse (int_of_string v, iters, tune) rest
    | "--gc-tune" :: rest -> parse (scale, iters, true) rest
    | a :: rest ->
      parse (scale, Option.fold ~none:iters ~some:Fun.id (int_of_string_opt a), tune) rest
  in
  let scale, iters, gc_tune = parse (10, 3, false) (List.tl (Array.to_list Sys.argv)) in
  if gc_tune then Gc_stats.tune ();
  let wall0 = Unix.gettimeofday () in
  let cases = List.map (bench_case ~iters ~scale) [ "gzip"; "mcf" ] in
  let min_speedup = List.fold_left (fun m (s, _) -> min m s) infinity cases in
  Printf.printf "gc: %s; peak RSS %d KiB; min speedup %.2fx\n%!" (Gc_stats.summary_line ())
    (Gc_stats.peak_rss_kb ()) min_speedup;
  let open Wish_util.Perf_json in
  let g = Gc_stats.snapshot () in
  write_file "BENCH_sample.json"
    (Obj
       [
         ("bench", String "sampleloop");
         ("scale", Int scale);
         ("iters", Int iters);
         ("wall_s", Float (Unix.gettimeofday () -. wall0));
         ("min_speedup", Float min_speedup);
         ("minor_words", Float g.minor_words);
         ("major_words", Float g.major_words);
         ("peak_rss_kb", of_rss (Gc_stats.peak_rss_kb_opt ()));
         ("cases", Obj (List.map snd cases));
       ])
