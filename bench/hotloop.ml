(* CPU-time harness for A/B-ing the simulator hot path: runs the same tiny
   kernels as the Bechamel fig1/fig10/fig14 micro-benchmarks in a
   fixed-count loop and reports ns/run measured with [Sys.time] (process
   CPU time), which stays comparable when other processes pollute the wall
   clock — plus per-case GC telemetry (minor/major words per run), the
   before/after yardstick for allocation work on the timing core.
   Usage: hotloop.exe [--gc-tune] [ITERS] (default 300). *)

module Gc_stats = Wish_util.Gc_stats

let time_case ~name ~iters ?(config = Wish_sim.Config.default) ~wish () =
  let program = Hotkernels.tiny_hammock ~wish in
  let trace, _ = Wish_emu.Trace.generate program in
  for _ = 1 to iters / 10 do
    ignore (Wish_sim.Runner.simulate ~config ~trace program)
  done;
  let g0 = Gc_stats.snapshot () in
  let t0 = Sys.time () in
  for _ = 1 to iters do
    ignore (Wish_sim.Runner.simulate ~config ~trace program)
  done;
  let dt = Sys.time () -. t0 in
  let g = Gc_stats.diff g0 (Gc_stats.snapshot ()) in
  let per w = w /. float_of_int iters in
  Printf.printf "%-8s %10.0f ns/run (cpu)  minor %9.0f w/run  major %8.0f w/run\n%!" name
    (1e9 *. dt /. float_of_int iters)
    (per g.minor_words) (per g.major_words);
  let open Wish_util.Perf_json in
  ( name,
    Obj
      [
        ("ns_per_run", Float (1e9 *. dt /. float_of_int iters));
        ("minor_words_per_run", Float (per g.minor_words));
        ("major_words_per_run", Float (per g.major_words));
      ] )

let () =
  let gc_tune = Array.exists (( = ) "--gc-tune") Sys.argv in
  let iters =
    Array.to_seq Sys.argv |> Seq.drop 1
    |> Seq.find_map (fun a -> int_of_string_opt a)
    |> Option.value ~default:300
  in
  if gc_tune then Gc_stats.tune ();
  let wall0 = Unix.gettimeofday () in
  let cases =
    List.map
      (fun (name, config, wish) -> time_case ~name ~iters ~config ~wish ())
      Hotkernels.cases
  in
  Printf.printf "gc: %s; peak RSS %d KiB\n%!" (Gc_stats.summary_line ())
    (Gc_stats.peak_rss_kb ());
  (* Machine-readable twin of the stdout report, for diffing runs. *)
  let open Wish_util.Perf_json in
  let g = Gc_stats.snapshot () in
  write_file "BENCH_hotloop.json"
    (Obj
       [
         ("bench", String "hotloop");
         ("iters", Int iters);
         ("wall_s", Float (Unix.gettimeofday () -. wall0));
         ("minor_words", Float g.minor_words);
         ("major_words", Float g.major_words);
         ("peak_rss_kb", of_rss (Gc_stats.peak_rss_kb_opt ()));
         ("cases", Obj cases);
       ])
