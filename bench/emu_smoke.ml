(* Emulator smoke: the tier-1 guardrail for the compiled emulator. On
   gzip at scale 1 (wish-jjl binary, input A) it requires:

   - identity: interpreted and compiled execution produce the same
     per-step fact stream (checksummed) and outcome in both modes, and
     [Trace.generate] yields word-identical traces with the compiled
     refill and with [Trace.use_interpreter] forced;
   - speedup: the compiled path beats the allocating interpreted loop by
     a conservative floor (best of 3 CPU-time trials — the real margin
     is measured by emuloop.exe; this only catches the optimization
     being silently disabled or regressed).

   Wired into [dune runtest] via the @emu-smoke alias. *)

module State = Wish_emu.State
module Exec = Wish_emu.Exec
module Compiled = Wish_emu.Compiled
module Trace = Wish_emu.Trace

let min_speedup = 1.3

let[@inline] mix acc ~pc ~guard_true ~taken ~next_pc ~addr =
  ((acc * 31) + pc)
  lxor (next_pc + (7 * (addr + 1)) + (if guard_true then 3 else 0) + if taken then 13 else 0)

let run_interp mode program =
  let code = Wish_isa.Program.code program in
  let st = State.create program in
  let acc = ref 0 in
  while not st.halted do
    let s = Exec.step mode code st in
    acc :=
      mix !acc ~pc:s.Exec.pc ~guard_true:s.guard_true ~taken:s.taken ~next_pc:s.next_pc
        ~addr:s.addr
  done;
  (st.retired, !acc, State.outcome st)

let run_compiled compiled program =
  let st = State.create program in
  let o = Exec.make_out () in
  let acc = ref 0 in
  let sink (o : Exec.out) =
    acc :=
      mix !acc ~pc:o.o_pc ~guard_true:o.o_guard_true ~taken:o.o_taken ~next_pc:o.o_next_pc
        ~addr:o.o_addr
  in
  Compiled.run_to_halt compiled st o ~sink ~fuel:max_int;
  (st.retired, !acc, State.outcome st)

let program =
  let bench = Wish_workloads.Workloads.find ~scale:1 "gzip" in
  let bins =
    Wish_compiler.Compiler.compile_all ~mem_words:bench.mem_words ~name:bench.name
      ~profile_data:(Wish_workloads.Bench.profile_data bench) bench.ast
  in
  Wish_workloads.Bench.program_for bench
    (Wish_compiler.Compiler.binary bins Wish_compiler.Policy.Wish_jjl)
    "A"

let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "FAIL emu-smoke: %s\n" m; exit 1) fmt

let check_identity mode tag =
  let compiled = Compiled.compile ~mode (Wish_isa.Program.code program) in
  let ri = run_interp mode program in
  let rc = run_compiled compiled program in
  if ri <> rc then fail "%s: compiled run differs from interpreted" tag

let check_trace_identity () =
  let with_interp v f =
    let saved = !Trace.use_interpreter in
    Trace.use_interpreter := v;
    Fun.protect ~finally:(fun () -> Trace.use_interpreter := saved) f
  in
  let tc, sc = with_interp false (fun () -> Trace.generate program) in
  let ti, si = with_interp true (fun () -> Trace.generate program) in
  if State.outcome sc <> State.outcome si then fail "trace outcomes differ";
  if Trace.length tc <> Trace.length ti then fail "trace lengths differ";
  for i = 0 to Trace.length tc - 1 do
    if
      Trace.pc tc i <> Trace.pc ti i
      || Trace.next_pc tc i <> Trace.next_pc ti i
      || Trace.addr tc i <> Trace.addr ti i
      || Trace.guard_true tc i <> Trace.guard_true ti i
      || Trace.taken tc i <> Trace.taken ti i
    then fail "trace entry %d differs between compiled and interpreted refill" i
  done

let time_best_of ~trials f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to trials do
    let t0 = Sys.time () in
    ignore (f ());
    best := min !best (Sys.time () -. t0)
  done;
  !best

let check_speedup () =
  let mode = Exec.Architectural in
  let compiled = Compiled.compile ~checked:false ~mode (Wish_isa.Program.code program) in
  let ti = time_best_of ~trials:3 (fun () -> run_interp mode program) in
  let tc = time_best_of ~trials:3 (fun () -> run_compiled compiled program) in
  let speedup = ti /. tc in
  Printf.printf "emu-smoke: identity OK; compiled speedup %.2fx (floor %.1fx)\n%!" speedup
    min_speedup;
  if speedup < min_speedup then
    fail "compiled emulator only %.2fx over interpreter (floor %.1fx)" speedup min_speedup

let () =
  check_identity Exec.Architectural "arch";
  check_identity Exec.Predicate_through "pt";
  (* The checked build must be equivalent too, not just bounds-safe. *)
  let checked = Compiled.compile ~checked:true ~mode:Exec.Architectural
                  (Wish_isa.Program.code program) in
  if run_compiled checked program <> run_interp Exec.Architectural program then
    fail "checked compiled run differs from interpreted";
  check_trace_identity ();
  check_speedup ()
