(* Scale smoke: run a loop-heavy (gzip) and a predication-heavy (mcf)
   kernel at scale 10 through the streaming pipeline, and fail if the
   bounded-memory guarantee regresses — peak trace residency must stay
   within a couple of chunks whatever the dynamic length. Wired into
   [dune runtest] via the @scale-smoke alias; the scale keeps the whole
   thing around a second so tier-1 stays fast. *)

let scale = 10

let run name =
  let bench = Wish_workloads.Workloads.find ~scale name in
  let bins =
    Wish_compiler.Compiler.compile_all ~mem_words:bench.mem_words ~name:bench.name
      ~profile_data:(Wish_workloads.Bench.profile_data bench) bench.ast
  in
  let program =
    Wish_workloads.Bench.program_for bench
      (Wish_compiler.Compiler.binary bins Wish_compiler.Policy.Wish_jjl)
      "A"
  in
  let trace = Wish_emu.Trace.stream program in
  let s = Wish_sim.Runner.simulate ~trace program in
  let peak = Wish_emu.Trace.peak_resident_entries trace in
  let cap = 2 * Wish_emu.Trace.chunk_capacity trace in
  Printf.printf "%-6s scale %d: %d insts, %d cycles, uPC %.3f, peak %d resident entries\n%!"
    name scale s.dynamic_insts s.cycles s.upc peak;
  if s.dynamic_insts < scale * 10_000 then (
    Printf.eprintf "FAIL %s: scale not applied (%d dynamic insts)\n" name s.dynamic_insts;
    exit 1);
  if peak > cap then (
    Printf.eprintf "FAIL %s: peak residency %d exceeds %d (2 chunks) — streaming not bounded\n"
      name peak cap;
    exit 1)

let () =
  Wish_util.Gc_stats.tune ();
  run "gzip";
  run "mcf"
