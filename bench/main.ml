(* The benchmark harness.

   Running [dune exec bench/main.exe] regenerates every table and figure of
   the paper's evaluation (the rows the paper reports, on our simulated
   machine and workloads) and then runs a Bechamel micro-benchmark suite
   with one [Test.make] per paper artifact, each timing the hardware
   mechanism that artifact stresses.

   Options:
     bench/main.exe fig10 tab5      regenerate selected artifacts only
     bench/main.exe --scale 2       larger workloads
     bench/main.exe --jobs 4        fan simulations across 4 domains
     bench/main.exe --no-cache      ignore the on-disk artifact cache
     bench/main.exe --micro-only    skip regeneration, Bechamel only
     bench/main.exe --quota 0.01    Bechamel per-test time budget (s) *)

module Lab = Wish_experiments.Lab
module Figures = Wish_experiments.Figures
module Ablations = Wish_experiments.Ablations

(* ------------------------------------------------------------------ *)
(* Artifact regeneration                                               *)
(* ------------------------------------------------------------------ *)

let regenerate ~scale ~jobs ~use_cache names =
  let cache = if use_cache then Some (Wish_experiments.Cache.create ()) else None in
  let lab = Lab.create ~scale ~jobs ?cache () in
  Fun.protect ~finally:(fun () -> Lab.shutdown lab) @@ fun () ->
  Lab.set_logger lab (fun s -> Printf.eprintf "[lab] %s\n%!" s);
  let catalog = Figures.all @ Ablations.all in
  let selected =
    if names = [] then catalog
    else
      List.filter_map
        (fun n ->
          match List.assoc_opt n catalog with
          | Some f -> Some (n, f)
          | None ->
            Printf.eprintf "unknown artifact %s\n" n;
            None)
        names
  in
  let wall0 = Unix.gettimeofday () in
  let timings =
    List.map
      (fun (name, f) ->
        let t0 = Unix.gettimeofday () in
        (* Fan the artifact's full simulation grid across the worker pool;
           the generator below then renders from warm memo tables. *)
        (match (Figures.jobs_for name lab, Ablations.jobs_for name lab) with
        | [], [] -> ()
        | js, [] | [], js -> Lab.prewarm lab js
        | _ -> assert false (* figure and ablation ids are disjoint *));
        Wish_util.Table.print (f lab);
        let dt = Unix.gettimeofday () -. t0 in
        Printf.printf "(%s regenerated in %.1fs)\n\n%!" name dt;
        (name, dt))
      selected
  in
  (* Machine-readable perf record of the regeneration pass. *)
  let open Wish_util.Perf_json in
  let st = Lab.batch_stats lab in
  let g = Wish_util.Gc_stats.snapshot () in
  write_file "BENCH_regen.json"
    (Obj
       [
         ("bench", String "regen");
         ("scale", Int scale);
         ("jobs", Int jobs);
         ("cache", Bool use_cache);
         ("wall_s", Float (Unix.gettimeofday () -. wall0));
         ("minor_words", Float g.minor_words);
         ("major_words", Float g.major_words);
         ("peak_rss_kb", of_rss (Wish_util.Gc_stats.peak_rss_kb_opt ()));
         ("cache_hits", Int st.cache_hits);
         ("tasks_executed", Int st.executed);
         ("artifacts", Obj (List.map (fun (n, dt) -> (n, Float dt)) timings));
       ])

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the mechanism behind each artifact        *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

(* fig1/fig10/fig12/fig14/fig15/fig16 all reduce to "simulate a kernel on
   some machine"; their micro-benchmarks time simulator cycles end to end
   on small hand-built kernels exercising the relevant binary flavour. *)

let tiny_hammock ~wish =
  let open Wish_isa in
  let hb ~guard l = if wish then Asm.wish_jump ~guard l else Asm.br ~guard l in
  let items =
    Asm.[
      movi 3 0;
      movi 4 0;
      label "loop";
      alu Inst.And 6 3 (Inst.Imm 255);
      load 7 6 64;
      cmp Inst.Eq ~dst_false:2 1 7 (Inst.Imm 1);
      hb ~guard:1 "then_";
      alu ~guard:2 Inst.Add 4 4 (Inst.Reg 7);
      alu ~guard:2 Inst.Xor 4 4 (Inst.Imm 3);
      (if wish then Asm.wish_join ~guard:2 "join" else Asm.jmp "join");
      label "then_";
      alu ~guard:1 Inst.Sub 4 4 (Inst.Imm 7);
      alu ~guard:1 Inst.Xor 4 4 (Inst.Imm 11);
      label "join";
      alu Inst.Add 3 3 (Inst.Imm 1);
      cmp Inst.Lt 1 3 (Inst.Imm 64);
      br ~guard:1 "loop";
      halt;
    ]
  in
  let rng = Wish_util.Rng.create 5 in
  let data = List.init 256 (fun k -> (64 + k, Wish_util.Rng.int rng 2)) in
  Wish_isa.Program.create ~mem_words:4096 ~data (Wish_isa.Asm.assemble items)

let simulate_once ?(config = Wish_sim.Config.default) program trace () =
  ignore (Wish_sim.Runner.simulate ~config ~trace program)

let sim_test ~name ?config ~wish () =
  let program = tiny_hammock ~wish in
  let trace, _ = Wish_emu.Trace.generate program in
  Test.make ~name (Staged.stage (simulate_once ?config program trace))

let micro_tests () =
  let open Wish_bpred in
  let conf_knob knobs = { Wish_sim.Config.default with Wish_sim.Config.knobs } in
  [
    (* fig1: input-sensitive predicated code = plain simulation of a
       predicated-equivalent kernel. *)
    sim_test ~name:"fig1: simulate normal-branch kernel" ~wish:false ();
    (* fig2: oracle knobs in the rename/fetch path. *)
    sim_test ~name:"fig2: simulate with NO-DEPEND+NO-FETCH oracle"
      ~config:
        (conf_knob { Wish_sim.Config.no_knobs with no_depend = true; no_fetch = true })
      ~wish:false ();
    (* fig10/fig12: the wish-branch machinery end to end. *)
    sim_test ~name:"fig10: simulate wish jump/join kernel" ~wish:true ();
    sim_test ~name:"fig12: simulate wish kernel, perfect confidence"
      ~config:(conf_knob { Wish_sim.Config.no_knobs with perfect_conf = true })
      ~wish:true ();
    (* fig11: the JRS confidence estimator. *)
    (let c = Confidence.create Confidence.default_config in
     let i = ref 0 in
     Test.make ~name:"fig11: JRS estimate+train"
       (Staged.stage (fun () ->
            incr i;
            let pc = !i land 63 in
            ignore (Confidence.is_high_confidence c ~pc ~history:!i);
            Confidence.train c ~pc ~history:!i ~correct:(!i land 3 <> 0))));
    (* fig13: the wish-loop predictor. *)
    (let lp = Loop_pred.create () in
     let i = ref 0 in
     Test.make ~name:"fig13: wish-loop predictor visit"
       (Staged.stage (fun () ->
            incr i;
            for _ = 1 to 4 do
              ignore (Loop_pred.predict lp ~pc:7);
              Loop_pred.spec_iterate lp ~pc:7 ~taken:true;
              Loop_pred.train lp ~pc:7 ~taken:true
            done;
            Loop_pred.spec_iterate lp ~pc:7 ~taken:false;
            Loop_pred.train lp ~pc:7 ~taken:false)));
    (* fig14: window scaling = ROB pressure; run the small kernel on a
       128-entry window. *)
    sim_test ~name:"fig14: simulate with 128-entry window"
      ~config:(Wish_sim.Config.with_rob Wish_sim.Config.default 128)
      ~wish:true ();
    (* fig15: pipeline depth = flush penalty; 10-stage machine. *)
    sim_test ~name:"fig15: simulate 10-stage pipeline"
      ~config:(Wish_sim.Config.with_pipeline_stages Wish_sim.Config.default 10)
      ~wish:true ();
    (* fig16: the select-uop translation path. *)
    sim_test ~name:"fig16: simulate with select-uop mechanism"
      ~config:{ Wish_sim.Config.default with Wish_sim.Config.mech = Wish_sim.Config.Select_uop }
      ~wish:true ();
    (* tab4: workload characterization rests on the emulator/tracer. *)
    (let program = tiny_hammock ~wish:true in
     Test.make ~name:"tab4: emulator trace generation"
       (Staged.stage (fun () -> ignore (Wish_emu.Trace.generate program))));
    (* tab5: binary selection rests on the compiler. *)
    (let b = Wish_workloads.Workloads.find ~scale:1 "gzip" in
     Test.make ~name:"tab5: compile all five gzip binaries"
       (Staged.stage (fun () ->
            ignore
              (Wish_compiler.Compiler.compile_all ~mem_words:b.mem_words ~name:b.name
                 ~profile_data:(Wish_workloads.Bench.profile_data b) b.ast))));
  ]

let run_micro ~quota () =
  print_endline "== Bechamel micro-benchmarks (one per paper artifact) ==";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second quota) ~kde:(Some 10) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"artifacts" (micro_tests ())) in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) i raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instances results in
  Hashtbl.iter
    (fun _ tbl ->
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-45s %12.0f ns/run\n" name est
          | _ -> Printf.printf "%-45s (no estimate)\n" name)
        tbl)
    results

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = ref 1 in
  let jobs = ref (Wish_util.Pool.default_size ()) in
  let use_cache = ref true in
  let micro_only = ref false in
  let no_micro = ref false in
  let quota = ref 0.25 in
  let names = ref [] in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
      scale := int_of_string v;
      parse rest
    | "--jobs" :: v :: rest ->
      jobs := int_of_string v;
      parse rest
    | "--no-cache" :: rest ->
      use_cache := false;
      parse rest
    | "--micro-only" :: rest ->
      micro_only := true;
      parse rest
    | "--no-micro" :: rest ->
      no_micro := true;
      parse rest
    | "--quota" :: v :: rest ->
      quota := float_of_string v;
      parse rest
    | x :: rest ->
      names := x :: !names;
      parse rest
  in
  parse args;
  let names = List.rev !names in
  if not !micro_only then regenerate ~scale:!scale ~jobs:!jobs ~use_cache:!use_cache names;
  if (not !no_micro) && names = [] then run_micro ~quota:!quota ()
