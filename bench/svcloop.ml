(* Service throughput harness: the acceptance benchmark for wishd's
   single-flight deduplication. Eight concurrent clients request
   overlapping fig10 matrices (rotating two-of-three benchmark subsets)
   from one daemon with the [svc.worker] faultpoint armed, against eight
   sequential cold local runs of the same matrices. Reports aggregate
   jobs/s for both sides, the dedup hit rate, and client-latency p50/p95
   to BENCH_svc.json (machine-local, gitignored), verifies every
   daemon-served table byte-identical to its local twin, and fails
   (exit 1) below a 4x aggregate-throughput floor.
   Usage: svcloop.exe [CLIENTS] (default 8). *)

module FP = Wish_util.Faultpoint
module Table = Wish_util.Table
module J = Wish_util.Perf_json
module Lab = Wish_experiments.Lab
module Cache = Wish_experiments.Cache
module Figures = Wish_experiments.Figures
module Service = Wish_experiments.Service

let root =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "wishsvcloop_%d" (Unix.getpid ()))

let rec rm_rf d =
  if Sys.file_exists d then
    if Sys.is_directory d then begin
      Array.iter (fun f -> rm_rf (Filename.concat d f)) (Sys.readdir d);
      try Sys.rmdir d with Sys_error _ -> ()
    end
    else try Sys.remove d with Sys_error _ -> ()

let fail fmt = Printf.ksprintf (fun s -> Printf.eprintf "FAIL: %s\n%!" s; exit 1) fmt
let socket = Filename.concat root "wishd.sock"
let cache_dir = Filename.concat root "cache"

(* Overlapping matrices: client i asks for fig10 restricted to three of
   these four benchmarks, so eight clients request 6x the distinct work
   — the dedup headroom the daemon is supposed to reclaim. Four
   benchmarks also means every one of the daemon's four shard workers
   owns one. *)
let benches = [| "gzip"; "mcf"; "twolf"; "vpr" |]

let matrix_of i =
  let n = Array.length benches in
  [ benches.(i mod n); benches.((i + 1) mod n); benches.((i + 2) mod n) ]

(* Scale 3: real table runs are scale >= 2, and at scale 1 the jobs are
   so short that fixed dispatch cost, not compute, is what gets
   measured (the smoke covers that regime). *)
let scale = 3

let spec_of i =
  {
    Service.sp_artifacts = [ "fig10" ];
    sp_scale = scale;
    sp_benchmarks = matrix_of i;
    sp_sample = None;
  }

(* Two forked workers: enough to exercise sharding, affinity, and the
   respawn path without oversubscribing small hosts — on a single-core
   box extra workers only multiply redundant cold lab builds, and the
   speedup this harness demands comes from single-flight dedup, not
   parallelism. *)
let daemon_main () =
  ignore (Unix.alarm 600);
  FP.arm "svc.worker" ~times:1;
  let log =
    if Sys.getenv_opt "SVCLOOP_DEBUG" <> None then
      fun s -> Printf.eprintf "[%.3f] %s\n%!" (Unix.gettimeofday ()) s
    else fun _ -> ()
  in
  Service.serve ~workers:2 ~socket ~cache_dir ~log ();
  exit 0

(* Client i: request the matrix, stream the table into [out], record the
   wall-clock latency (connect included) and the job-row count. *)
let client_main i out =
  ignore (Unix.alarm 600);
  let t0 = Unix.gettimeofday () in
  match Service.connect ~socket with
  | Error e ->
    Printf.eprintf "client %d: connect: %s\n%!" i e;
    exit 3
  | Ok c -> (
    let buf = Buffer.create 1024 in
    let rows = ref 0 in
    let r =
      Service.run_remote c ~spec:(spec_of i)
        ~on_row:(fun _ -> incr rows)
        ~on_table:(fun ~artifact:_ ~text ~csv:_ -> Buffer.add_string buf text)
        ()
    in
    Service.close c;
    match r with
    | Ok _ ->
      let dt = Unix.gettimeofday () -. t0 in
      let oc = open_out out in
      Printf.fprintf oc "%.6f %d\n" dt !rows;
      output_string oc (Buffer.contents buf);
      close_out oc;
      exit 0
    | Error e ->
      Printf.eprintf "client %d: run: %s\n%!" i e;
      exit 4)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Ready when a real hello round-trip succeeds — a bare socket-file poll
   can race the daemon between bind and listen, or see a slow start. *)
let wait_ready daemon_pid =
  let ready = ref false and tries = ref 0 in
  while (not !ready) && !tries < 1200 do
    incr tries;
    (match Unix.waitpid [ Unix.WNOHANG ] daemon_pid with
    | 0, _ -> ()
    | _ -> fail "daemon died during startup");
    (match Service.connect ~socket with
    | Ok c ->
      Service.close c;
      ready := true
    | Error _ -> ignore (Unix.select [] [] [] 0.05))
  done;
  if not !ready then fail "daemon never came up on %s" socket

(* One cold local run of client i's matrix: fresh serial lab, fresh
   cache directory — what `experiments fig10 -b X -b Y` costs from
   scratch. Returns the rendered table for the byte-identity check. *)
let local_run i =
  let dir = Filename.concat root (Printf.sprintf "local%d" i) in
  let lab =
    Lab.create ~scale ~names:(matrix_of i)
      ~jobs:(Wish_util.Pool.auto_size ())
      ~cache:(Cache.create ~dir ()) ()
  in
  Fun.protect ~finally:(fun () -> Lab.shutdown lab) @@ fun () ->
  Table.render (Figures.fig10 lab)

let () =
  ignore (Unix.alarm 600);
  let clients =
    Array.to_seq Sys.argv |> Seq.drop 1
    |> Seq.find_map (fun a -> int_of_string_opt a)
    |> Option.value ~default:8
  in
  rm_rf root;
  Unix.mkdir root 0o755;
  let daemon_pid = match Unix.fork () with 0 -> daemon_main () | pid -> pid in
  (* Never leak the daemon (and its workers): whatever happens, it dies
     with this process. The clean shutdown below makes this a no-op. *)
  Fun.protect ~finally:(fun () ->
      (try Unix.kill daemon_pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] daemon_pid) with Unix.Unix_error _ -> ());
      rm_rf root)
  @@ fun () ->
  wait_ready daemon_pid;
  (* --- concurrent remote phase --- *)
  let outs = Array.init clients (fun i -> Filename.concat root (Printf.sprintf "c%d.out" i)) in
  let t0 = Unix.gettimeofday () in
  let pids =
    Array.init clients (fun i ->
        match Unix.fork () with 0 -> client_main i outs.(i) | pid -> pid)
  in
  Array.iteri
    (fun i pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED n -> fail "client %d exited %d" i n
      | _, Unix.WSIGNALED n -> fail "client %d killed by signal %d" i n
      | _, Unix.WSTOPPED _ -> fail "client %d stopped" i)
    pids;
  let wall_remote = Unix.gettimeofday () -. t0 in
  (* Per-client latency + row count head each output file. *)
  let latencies = Array.make clients 0.0 in
  let rows_total = ref 0 in
  let tables =
    Array.init clients (fun i ->
        let s = read_file outs.(i) in
        let nl = String.index s '\n' in
        (match String.split_on_char ' ' (String.sub s 0 nl) with
        | [ lat; rows ] ->
          latencies.(i) <- float_of_string lat;
          rows_total := !rows_total + int_of_string rows
        | _ -> fail "client %d wrote a malformed header" i);
        String.sub s (nl + 1) (String.length s - nl - 1))
  in
  (* Daemon counters, then ask it to exit (the shutdown-request path;
     svc_smoke owns the SIGINT path). *)
  let stats =
    match Service.connect ~socket with
    | Error e -> fail "stats connect: %s" e
    | Ok c ->
      let s =
        match Service.stats_remote c with Ok s -> s | Error e -> fail "stats: %s" e
      in
      (match Service.shutdown_remote c with
      | Ok () -> ()
      | Error e -> fail "shutdown: %s" e);
      Service.close c;
      s
  in
  (match Unix.waitpid [] daemon_pid with
  | _, Unix.WEXITED 0 -> ()
  | _, st ->
    fail "daemon did not exit cleanly (%s)"
      (match st with
      | Unix.WEXITED n -> Printf.sprintf "exit %d" n
      | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
      | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n));
  let geti k =
    match J.member k stats with Some (J.Int i) -> i | _ -> fail "stats lacks %s" k
  in
  let dedup = geti "dedup_hits"
  and cache_hits = geti "cache_hits"
  and computed = geti "computed"
  and jobs_requested = geti "jobs_requested"
  and respawns = geti "respawns" in
  if respawns < 1 then fail "svc.worker was armed but no worker respawned";
  (* --- sequential cold local phase (same matrices, byte-identity oracle) --- *)
  let t1 = Unix.gettimeofday () in
  let locals = Array.init clients local_run in
  let wall_local = Unix.gettimeofday () -. t1 in
  Array.iteri
    (fun i t ->
      if not (String.equal t locals.(i)) then
        fail "client %d table differs from its local run:\n%s\n--- vs ---\n%s" i t
          locals.(i))
    tables;
  (* --- report --- *)
  Array.sort compare latencies;
  let pct p = latencies.(min (clients - 1) (p * clients / 100)) in
  let p50 = pct 50 and p95 = pct 95 in
  let speedup = wall_local /. wall_remote in
  let dedup_rate = float_of_int dedup /. float_of_int (max 1 jobs_requested) in
  Printf.printf
    "svcloop: %d clients  remote %.2fs  8x-cold-local %.2fs  speedup %.1fx\n" clients
    wall_remote wall_local speedup;
  Printf.printf
    "         %d row(s) served (%d requested): %d computed, %d dedup (%.0f%%), %d cache; \
     %d respawn(s)\n"
    !rows_total jobs_requested computed dedup (100. *. dedup_rate) cache_hits respawns;
  Printf.printf "         jobs/s remote %.1f vs local %.1f; latency p50 %.2fs p95 %.2fs\n%!"
    (float_of_int !rows_total /. wall_remote)
    (float_of_int !rows_total /. wall_local)
    p50 p95;
  J.write_file "BENCH_svc.json"
    (J.Obj
       [
         ("bench", J.String "svcloop");
         ("clients", J.Int clients);
         ("wall_remote_s", J.Float wall_remote);
         ("wall_local_s", J.Float wall_local);
         ("speedup", J.Float speedup);
         ("rows_served", J.Int !rows_total);
         ("jobs_requested", J.Int jobs_requested);
         ("computed", J.Int computed);
         ("dedup_hits", J.Int dedup);
         ("dedup_rate", J.Float dedup_rate);
         ("cache_hits", J.Int cache_hits);
         ("respawns", J.Int respawns);
         ("jobs_per_s_remote", J.Float (float_of_int !rows_total /. wall_remote));
         ("jobs_per_s_local", J.Float (float_of_int !rows_total /. wall_local));
         ("latency_p50_s", J.Float p50);
         ("latency_p95_s", J.Float p95);
       ]);
  if dedup < 1 then fail "expected dedup_hits >= 1 across overlapping clients";
  if speedup < 4.0 then
    fail "aggregate throughput %.1fx is below the 4x acceptance floor" speedup;
  print_endline "svcloop OK: byte-identical tables, >= 4x aggregate throughput"
