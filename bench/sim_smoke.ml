(* Simulator smoke: the tier-1 guardrail for the compiled timing core. On
   a small workload/binary sample it requires:

   - identity: the compiled core ({!Wish_sim.Compiled}) and the
     interpreted reference ({!Wish_sim.Core}) produce the same cycle
     count, the same full stats bag (names, values and insertion order)
     and the same memory-hierarchy counters — including a repeated
     compiled run, which exercises the pooled-scaffold reset path;
   - speedup: the compiled whole-pipeline path (simulate with pooled
     state) beats the interpreted one by a conservative floor (best of 3
     CPU-time trials — the real margin is measured by simloop.exe; this
     only catches the optimization being silently disabled or regressed).

   Wired into [dune runtest] via the @sim-smoke alias. *)

module Core = Wish_sim.Core
module Compiled = Wish_sim.Compiled
module Runner = Wish_sim.Runner
module Stats = Wish_util.Stats

let min_speedup = 1.3

let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "FAIL sim-smoke: %s\n" m; exit 1) fmt

let program_for name kind =
  let bench = Wish_workloads.Workloads.find ~scale:1 name in
  let bins =
    Wish_compiler.Compiler.compile_all ~mem_words:bench.mem_words ~name:bench.name
      ~profile_data:(Wish_workloads.Bench.profile_data bench) bench.ast
  in
  Wish_workloads.Bench.program_for bench (Wish_compiler.Compiler.binary bins kind) "A"

let run_interp config program trace =
  let core = Core.create config program trace in
  ignore (Core.run core);
  (Core.cycles core, Stats.to_assoc (Core.stats core), Core.hier_stats core)

let run_compiled config program trace =
  let core = Compiled.create config program trace in
  ignore (Compiled.run core);
  (Compiled.cycles core, Stats.to_assoc (Compiled.stats core), Compiled.hier_stats core)

let check_identity name kind config =
  let tag = Printf.sprintf "%s/%s" name (Wish_compiler.Policy.kind_name kind) in
  let program = program_for name kind in
  let trace, _final = Wish_emu.Trace.generate program in
  let ci, si, mi = run_interp config program trace in
  let cc, sc, mc = run_compiled config program trace in
  if ci <> cc then fail "%s: cycles differ (interp %d, compiled %d)" tag ci cc;
  if mi <> mc then fail "%s: hierarchy stats differ" tag;
  (if si <> sc then begin
     List.iter
       (fun (k, v) ->
         match List.assoc_opt k sc with
         | Some v' when v' = v -> ()
         | Some v' -> Printf.eprintf "  %s: interp %d compiled %d\n" k v v'
         | None -> Printf.eprintf "  %s: interp %d, missing in compiled\n" k v)
       si;
     List.iter
       (fun (k, _) ->
         if List.assoc_opt k si = None then Printf.eprintf "  %s: compiled-only\n" k)
       sc;
     if List.sort compare si = List.sort compare sc then
       fail "%s: stats orders differ (same contents)" tag
     else fail "%s: stats differ" tag
   end);
  (* Second compiled run on the pooled scaffold and machine tables must
     reproduce the same numbers exactly (the reset-to-cold guarantee). *)
  let cc2, sc2, mc2 = run_compiled config program trace in
  if (cc, sc, mc) <> (cc2, sc2, mc2) then fail "%s: pooled re-run differs" tag

let time_best f =
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Sys.time () in
    f ();
    let dt = Sys.time () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let check_speedup () =
  let program = program_for "gzip" Wish_compiler.Policy.Wish_jjl in
  let trace, _final = Wish_emu.Trace.generate program in
  let config = Wish_sim.Config.default in
  let with_compiled v f =
    let saved = !Core.use_compiled in
    Core.use_compiled := v;
    Fun.protect ~finally:(fun () -> Core.use_compiled := saved) f
  in
  (* One warm-up run per path (plan compilation, pool growth). *)
  ignore (run_compiled config program trace);
  ignore (run_interp config program trace);
  let tc =
    time_best (fun () ->
        with_compiled true (fun () -> ignore (Runner.simulate ~config ~trace program)))
  in
  let ti =
    time_best (fun () ->
        with_compiled false (fun () -> ignore (Runner.simulate ~config ~trace program)))
  in
  let speedup = ti /. tc in
  Printf.printf "sim-smoke: interp %.4fs compiled %.4fs speedup %.2fx\n%!" ti tc speedup;
  if speedup < min_speedup then
    fail "speedup %.2fx below floor %.2fx (compiled path disabled or regressed?)" speedup
      min_speedup

let () =
  let config = Wish_sim.Config.default in
  List.iter
    (fun (name, kind) -> check_identity name kind config)
    [
      ("gzip", Wish_compiler.Policy.Wish_jjl);
      ("gzip", Wish_compiler.Policy.Normal);
      ("mcf", Wish_compiler.Policy.Base_def);
      ("twolf", Wish_compiler.Policy.Wish_jj);
    ];
  check_speedup ();
  print_endline "sim-smoke: OK"
