(* CPU-time A/B harness for the timing simulator: the full fig10 detailed
   matrix — every workload crossed with every binary kind — simulated
   through both cores,

     interp     the interpreted reference ({!Wish_sim.Core}, --sim-interp)
     compiled   the per-pc-template core ({!Wish_sim.Compiled})

   under the default detailed configuration. Each case first runs an
   untimed identity gate (cycle count, the full stats bag, the memory
   hierarchy counters, and a pooled compiled re-run must all agree); the
   timed region then measures whole runs of [Runner.simulate] over a
   pre-generated trace — the exact unit of work the figure pipeline
   schedules — interleaved round-robin so scheduler noise on a shared box
   taxes both paths alike, taking each path's best (minimum) segment.
   Reports ns/run and GC pressure per path and case, the per-case speedup,
   and matrix-level aggregates (min/geomean speedup, total matrix time,
   minor-allocation ratio). Twin JSON report in BENCH_sim.json — the sole
   owner of that file. Usage: simloop.exe [--gc-tune] [--scale N] [ITERS]
   (defaults: scale 1 — the figure-table scale — and 18 timed runs per
   path per case). *)

module Core = Wish_sim.Core
module Compiled = Wish_sim.Compiled
module Runner = Wish_sim.Runner
module Stats = Wish_util.Stats
module Gc_stats = Wish_util.Gc_stats
module Policy = Wish_compiler.Policy

let kinds = Policy.[ Normal; Base_def; Base_max; Wish_jj; Wish_jjl ]

let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "FAIL simloop: %s\n" m; exit 1) fmt

let program_for ~scale name kind =
  let bench = Wish_workloads.Workloads.find ~scale name in
  let bins =
    Wish_compiler.Compiler.compile_all ~mem_words:bench.mem_words ~name:bench.name
      ~profile_data:(Wish_workloads.Bench.profile_data bench) bench.ast
  in
  Wish_workloads.Bench.program_for bench (Wish_compiler.Compiler.binary bins kind) "A"

let with_compiled v f =
  let saved = !Core.use_compiled in
  Core.use_compiled := v;
  Fun.protect ~finally:(fun () -> Core.use_compiled := saved) f

(* ----------------------------------------------------------------- *)
(* Identity gate                                                      *)
(* ----------------------------------------------------------------- *)

let run_interp config program trace =
  let core = Core.create config program trace in
  ignore (Core.run core);
  (Core.cycles core, Stats.to_assoc (Core.stats core), Core.hier_stats core)

let run_compiled config program trace =
  let core = Compiled.create config program trace in
  ignore (Compiled.run core);
  (Compiled.cycles core, Stats.to_assoc (Compiled.stats core), Compiled.hier_stats core)

let check_identity ~tag config program trace =
  let ci, si, mi = run_interp config program trace in
  let cc, sc, mc = run_compiled config program trace in
  if ci <> cc then fail "%s: cycles differ (interp %d, compiled %d)" tag ci cc;
  if mi <> mc then fail "%s: hierarchy stats differ" tag;
  (if si <> sc then begin
     List.iter
       (fun (k, v) ->
         match List.assoc_opt k sc with
         | Some v' when v' = v -> ()
         | Some v' -> Printf.eprintf "  %s: interp %d compiled %d\n" k v v'
         | None -> Printf.eprintf "  %s: interp %d, missing in compiled\n" k v)
       si;
     fail "%s: stats differ" tag
   end);
  let cc2, sc2, mc2 = run_compiled config program trace in
  if (cc, sc, mc) <> (cc2, sc2, mc2) then fail "%s: pooled compiled re-run differs" tag;
  ci

(* ----------------------------------------------------------------- *)
(* Timing                                                             *)
(* ----------------------------------------------------------------- *)

(* Interleaved timing cycles per case: both paths run one timed batch per
   cycle, so a slow window on a shared box taxes them alike. *)
let cycles = 6

(* Time both paths over [rounds] whole simulate-runs each. Returns
   per-path (best ns/run, mean minor words/run) for
   [| interp; compiled |]. *)
let time_case ~config ~program ~trace ~rounds =
  let paths = [| false; true |] in
  let batch = max 1 ((rounds + cycles - 1) / cycles) in
  let n = Array.length paths in
  let best = Array.make n infinity
  and minor = Array.make n 0.0
  and done_ = Array.make n 0 in
  for _ = 1 to cycles do
    Array.iteri
      (fun j use ->
        let b = min batch (rounds - done_.(j)) in
        if b > 0 then
          with_compiled use (fun () ->
              let g0 = Gc_stats.snapshot () in
              let t0 = Sys.time () in
              for _ = 1 to b do
                ignore (Runner.simulate ~config ~trace program)
              done;
              let seg = Sys.time () -. t0 in
              best.(j) <- min best.(j) (1e9 *. seg /. float_of_int b);
              minor.(j) <-
                minor.(j) +. (Gc_stats.diff g0 (Gc_stats.snapshot ())).Gc_stats.minor_words;
              done_.(j) <- done_.(j) + b))
      paths
  done;
  Array.init n (fun j -> (best.(j), minor.(j) /. float_of_int done_.(j)))

let bench_case ~iters ~config ~scale name kind =
  let tag = Printf.sprintf "%s_%s" name (Policy.kind_name kind) in
  let program = program_for ~scale name kind in
  let trace, _final = Wish_emu.Trace.generate program in
  let cycles_run = check_identity ~tag config program trace in
  let timings = time_case ~config ~program ~trace ~rounds:iters in
  let i_ns, i_mw = timings.(0) in
  let c_ns, c_mw = timings.(1) in
  let speedup = i_ns /. c_ns in
  Printf.printf
    "%-16s %8d cyc  interp %8.0f ns/run (%8.0f w)  compiled %8.0f ns/run (%7.0f w)  %5.2fx\n%!"
    tag cycles_run i_ns i_mw c_ns c_mw speedup
  [@ocamlformat "disable"];
  let open Wish_util.Perf_json in
  ( (speedup, i_ns, c_ns, i_mw, c_mw),
    ( tag,
      Obj
        [
          ("cycles", Int cycles_run);
          ("interp_ns_per_run", Float i_ns);
          ("interp_minor_words_per_run", Float i_mw);
          ("compiled_ns_per_run", Float c_ns);
          ("compiled_minor_words_per_run", Float c_mw);
          ("speedup", Float speedup);
          ("minor_words_ratio_pct", Float (100.0 *. c_mw /. i_mw));
        ] ) )

let () =
  let rec parse (scale, iters, tune) = function
    | [] -> (scale, iters, tune)
    | "--scale" :: v :: rest -> parse (int_of_string v, iters, tune) rest
    | "--gc-tune" :: rest -> parse (scale, iters, true) rest
    | a :: rest ->
      parse (scale, Option.fold ~none:iters ~some:Fun.id (int_of_string_opt a), tune) rest
  in
  let scale, iters, gc_tune = parse (1, 18, false) (List.tl (Array.to_list Sys.argv)) in
  if gc_tune then Gc_stats.tune ();
  let config = Wish_sim.Config.default in
  let wall0 = Unix.gettimeofday () in
  let cases =
    List.concat_map
      (fun name -> List.map (fun kind -> bench_case ~iters ~config ~scale name kind) kinds)
      Wish_workloads.Workloads.names
  in
  let vals = List.map fst cases in
  let min_speedup = List.fold_left (fun m (s, _, _, _, _) -> min m s) infinity vals in
  let geomean =
    exp
      (List.fold_left (fun a (s, _, _, _, _) -> a +. log s) 0.0 vals
      /. float_of_int (List.length vals))
  in
  let sum f = List.fold_left (fun a v -> a +. f v) 0.0 vals in
  let i_total = sum (fun (_, i, _, _, _) -> i) and c_total = sum (fun (_, _, c, _, _) -> c) in
  let i_minor = sum (fun (_, _, _, m, _) -> m) and c_minor = sum (fun (_, _, _, _, m) -> m) in
  Printf.printf
    "matrix: interp %.1f ms  compiled %.1f ms  overall %.2fx  geomean %.2fx  min %.2fx  minor %.1f%%\n%!"
    (i_total /. 1e6) (c_total /. 1e6) (i_total /. c_total) geomean min_speedup
    (100.0 *. c_minor /. i_minor);
  Printf.printf "gc: %s; peak RSS %d KiB\n%!" (Gc_stats.summary_line ())
    (Gc_stats.peak_rss_kb ());
  let open Wish_util.Perf_json in
  let g = Gc_stats.snapshot () in
  write_file "BENCH_sim.json"
    (Obj
       [
         ("bench", String "simloop");
         ("scale", Int scale);
         ("iters", Int iters);
         ("wall_s", Float (Unix.gettimeofday () -. wall0));
         ("overall_speedup", Float (i_total /. c_total));
         ("geomean_speedup", Float geomean);
         ("min_speedup", Float min_speedup);
         ("interp_matrix_ns", Float i_total);
         ("compiled_matrix_ns", Float c_total);
         ("minor_words_ratio_pct", Float (100.0 *. c_minor /. i_minor));
         ("minor_words", Float g.minor_words);
         ("major_words", Float g.major_words);
         ("peak_rss_kb", of_rss (Gc_stats.peak_rss_kb_opt ()));
         ("cases", Obj (List.map snd cases));
       ])
