(* CPU-time A/B harness for the architectural emulator: runs gzip and mcf
   to completion through the three emulation paths —

     interp    the allocating [Exec.step] loop (the original seed path)
     noalloc   [Exec.step_into] with one reused out-record
     compiled  [Compiled.run_to_halt], pre-decoded basic blocks

   — in both execution modes. Each case first does an untimed
   verification pass that folds every step's facts into a checksum and
   requires all three paths to agree on the stream and on the
   architectural outcome; the timed region then measures emulation
   alone (per-step facts are still produced — interp allocates its
   record, the others fill the shared out-record — but no consumer is
   attached, which is the Trace/Profile fast-forward configuration).
   Reports insts/sec, ns/inst and GC pressure per path plus the
   compiled-vs-interp speedup. Twin JSON report in BENCH_emu.json.
   Usage: emuloop.exe [--gc-tune] [--scale N] [ITERS]
   (defaults: scale 10, 3 timed runs per case). *)

module Gc_stats = Wish_util.Gc_stats
module State = Wish_emu.State
module Exec = Wish_emu.Exec
module Compiled = Wish_emu.Compiled

(* Fold one step's facts into a running checksum. All three paths must
   agree on the folded stream, not just the final state. *)
let[@inline] mix acc ~pc ~guard_true ~taken ~next_pc ~addr =
  ((acc * 31) + pc)
  lxor (next_pc + (7 * (addr + 1)) + (if guard_true then 3 else 0) + if taken then 13 else 0)

(* Verification runners: full fact-stream checksum per path. *)

let verify_interp mode code st =
  let acc = ref 0 in
  while not st.State.halted do
    let s = Exec.step mode code st in
    acc :=
      mix !acc ~pc:s.Exec.pc ~guard_true:s.guard_true ~taken:s.taken ~next_pc:s.next_pc
        ~addr:s.addr
  done;
  !acc

let verify_noalloc mode code st =
  let o = Exec.make_out () in
  let acc = ref 0 in
  while not st.State.halted do
    Exec.step_into mode code st o;
    acc :=
      mix !acc ~pc:o.Exec.o_pc ~guard_true:o.o_guard_true ~taken:o.o_taken ~next_pc:o.o_next_pc
        ~addr:o.o_addr
  done;
  !acc

let verify_compiled compiled st =
  let o = Exec.make_out () in
  let acc = ref 0 in
  let sink (o : Exec.out) =
    acc :=
      mix !acc ~pc:o.o_pc ~guard_true:o.o_guard_true ~taken:o.o_taken ~next_pc:o.o_next_pc
        ~addr:o.o_addr
  in
  Compiled.run_to_halt compiled st o ~sink ~fuel:max_int;
  !acc

(* Timed runners: emulation only, no per-step consumer. *)

let run_interp mode code st =
  while not st.State.halted do
    ignore (Exec.step mode code st)
  done

let run_noalloc mode code st =
  let o = Exec.make_out () in
  while not st.State.halted do
    Exec.step_into mode code st o
  done

let run_compiled compiled st =
  let o = Exec.make_out () in
  Compiled.run_to_halt compiled st o ~sink:Compiled.no_sink ~fuel:max_int

(* Sample size: short workloads rerun until every path has emulated at
   least this many instructions, or the Sys.time signal drowns in
   scheduling noise on a busy box. *)
let min_insts = 8_000_000

(* Interleaved timing cycles per case: every path runs one timed batch
   per cycle, so a slow window on a shared box taxes all paths alike
   instead of whichever one it happened to land on. *)
let cycles = 8

(* Time each runner in [fs] over fresh runs (one untimed warmup each).
   Work is split into [cycles] round-robin batches; each batch is timed
   as one segment and the best (minimum) per-instruction time across a
   path's segments is reported — the minimum is the reading least
   polluted by scheduler interference, and every path is reduced the
   same way. States are created untimed per batch so even mcf's 8 MB
   images never pile up; state construction and the outcome fold stay
   outside the timed region — we are measuring emulation, and both would
   dilute every path equally. Returns
   (retired, per-path (best ns/inst, mean minor words/inst)). *)
let time_paths ~iters ~program (fs : (State.t -> unit) array) =
  let st0 = State.create program in
  fs.(0) st0;
  let retired = st0.State.retired in
  Array.iteri (fun j f -> if j > 0 then f (State.create program)) fs;
  let rounds = max iters ((min_insts + retired - 1) / retired) in
  let batch = (rounds + cycles - 1) / cycles in
  let n = Array.length fs in
  let best = Array.make n infinity
  and minor = Array.make n 0.0
  and done_ = Array.make n 0 in
  for _ = 1 to cycles do
    Array.iteri
      (fun j f ->
        let b = min batch (rounds - done_.(j)) in
        if b > 0 then begin
          let states = Array.init b (fun _ -> State.create program) in
          let g0 = Gc_stats.snapshot () in
          let t0 = Sys.time () in
          for k = 0 to b - 1 do
            f states.(k)
          done;
          let seg = Sys.time () -. t0 in
          best.(j) <- min best.(j) (1e9 *. seg /. float_of_int (b * retired));
          minor.(j) <-
            minor.(j) +. (Gc_stats.diff g0 (Gc_stats.snapshot ())).Gc_stats.minor_words;
          Array.iter
            (fun (st : State.t) ->
              if (not st.halted) || st.retired <> retired then
                failwith "emuloop: non-deterministic run")
            states;
          done_.(j) <- done_.(j) + b
        end)
      fs
  done;
  ( retired,
    Array.init n (fun j -> (best.(j), minor.(j) /. float_of_int (done_.(j) * retired))) )

let mode_tag = function Exec.Architectural -> "arch" | Exec.Predicate_through -> "pt"

let bench_case ~iters ~program ~name mode =
  let code = Wish_isa.Program.code program in
  let compiled = Compiled.compile ~mode code in
  (* Untimed identity gate: same fact stream, same outcome, all paths. *)
  let fact_run f =
    let st = State.create program in
    let sum = f st in
    (sum, State.outcome st)
  in
  let gold = fact_run (verify_interp mode code) in
  if
    fact_run (verify_noalloc mode code) <> gold
    || fact_run (fun st -> verify_compiled compiled st) <> gold
  then begin
    Printf.eprintf "FAIL %s/%s: emulation paths disagree\n" name (mode_tag mode);
    exit 1
  end;
  let retired, timings =
    time_paths ~iters ~program
      [| run_interp mode code; run_noalloc mode code; run_compiled compiled |]
  in
  let i_ns, i_mw = timings.(0) in
  let n_ns, n_mw = timings.(1) in
  let c_ns, c_mw = timings.(2) in
  let case = Printf.sprintf "%s_%s" name (mode_tag mode) in
  let speedup = i_ns /. c_ns in
  Printf.printf
    "%-10s %9d insts  interp %6.1f ns/i (%5.2f w/i)  noalloc %6.1f ns/i (%5.2f w/i)  compiled %6.1f ns/i (%5.2f w/i)  %5.2fx (%4.1f Mi/s)\n%!"
    case retired i_ns i_mw n_ns n_mw c_ns c_mw speedup
    (1e3 /. c_ns)
  [@ocamlformat "disable"];
  let open Wish_util.Perf_json in
  ( speedup,
    ( case,
      Obj
        [
          ("insts", Int retired);
          ("blocks", Int (Compiled.block_count compiled));
          ("mean_block_len", Float (Compiled.mean_block_len compiled));
          ("interp_ns_per_inst", Float i_ns);
          ("interp_minor_words_per_inst", Float i_mw);
          ("noalloc_ns_per_inst", Float n_ns);
          ("noalloc_minor_words_per_inst", Float n_mw);
          ("compiled_ns_per_inst", Float c_ns);
          ("compiled_minor_words_per_inst", Float c_mw);
          ("compiled_minsts_per_s", Float (1e3 /. c_ns));
          ("speedup_vs_interp", Float speedup);
          ("speedup_vs_noalloc", Float (n_ns /. c_ns));
        ] ) )

let program_for ~scale name =
  let bench = Wish_workloads.Workloads.find ~scale name in
  let bins =
    Wish_compiler.Compiler.compile_all ~mem_words:bench.mem_words ~name:bench.name
      ~profile_data:(Wish_workloads.Bench.profile_data bench) bench.ast
  in
  Wish_workloads.Bench.program_for bench
    (Wish_compiler.Compiler.binary bins Wish_compiler.Policy.Wish_jjl)
    "A"

let () =
  let rec parse (scale, iters, tune) = function
    | [] -> (scale, iters, tune)
    | "--scale" :: v :: rest -> parse (int_of_string v, iters, tune) rest
    | "--gc-tune" :: rest -> parse (scale, iters, true) rest
    | a :: rest ->
      parse (scale, Option.fold ~none:iters ~some:Fun.id (int_of_string_opt a), tune) rest
  in
  let scale, iters, gc_tune = parse (10, 3, false) (List.tl (Array.to_list Sys.argv)) in
  if gc_tune then Gc_stats.tune ();
  let wall0 = Unix.gettimeofday () in
  let cases =
    List.concat_map
      (fun name ->
        let program = program_for ~scale name in
        List.map
          (fun mode -> bench_case ~iters ~program ~name mode)
          [ Exec.Architectural; Exec.Predicate_through ])
      [ "gzip"; "mcf" ]
  in
  let min_speedup = List.fold_left (fun m (s, _) -> min m s) infinity cases in
  Printf.printf "gc: %s; peak RSS %d KiB; min speedup %.2fx\n%!" (Gc_stats.summary_line ())
    (Gc_stats.peak_rss_kb ()) min_speedup;
  let open Wish_util.Perf_json in
  let g = Gc_stats.snapshot () in
  write_file "BENCH_emu.json"
    (Obj
       [
         ("bench", String "emuloop");
         ("scale", Int scale);
         ("iters", Int iters);
         ("wall_s", Float (Unix.gettimeofday () -. wall0));
         ("min_speedup", Float min_speedup);
         ("minor_words", Float g.minor_words);
         ("major_words", Float g.major_words);
         ("peak_rss_kb", of_rss (Gc_stats.peak_rss_kb_opt ()));
         ("cases", Obj (List.map snd cases));
       ])
