(* The sampling spec shared by sampleloop.exe (baseline recorder) and
   perfgate.exe (regression gate). One definition so the two can never
   measure different pipelines.

   A fixed SMARTS-style sparse spec rather than [Sampler.auto]: auto
   targets estimate quality (~5-10% of entries in detailed windows),
   which makes a scale-10 sampled run mostly *detailed-window* time —
   shared by every warming path and therefore blind to warming
   throughput, the thing this benchmark exists to track. 600k warm
   entries between 4.2k-entry windows is canonical interval-sampling
   territory (~1-3% detailed at scale 10) and keeps functional warming
   the dominant cost, so a warming regression actually moves the
   end-to-end number. The identity gates in sampleloop and the fused
   test group in test_sim cover estimator agreement at other specs. *)
let spec = Wish_sim.Sampler.spec ~warm:600_000 ~detail:4_200
