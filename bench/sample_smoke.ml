(* Sample smoke: gzip and mcf at scale 1, sampled vs exact. Fails if
   the exact run drifts from the seed constants (the sampled-simulation
   machinery must not perturb exact mode) or if the sampled µPC estimate
   errs by more than 2%. Also reruns the sampled mode with the windows
   fanned over a 2-domain pool, and a third time through the fused
   trace-free warming path (Sampler.run_fused, serial and pooled),
   requiring byte-identical results each time — the interval-parallel
   schedule and the fused warming hooks are both supposed to be
   invisible. Wired into [dune runtest] via the @sample-smoke alias. *)

(* Exact-mode seed constants (cycles, retired µops), input A, default
   machine, wish-jjl binary. *)
let golden = [ ("gzip", (140_814, 176_391)); ("mcf", (33_458, 31_854)) ]

(* Dense spec for the short scale-1 traces: most entries measured, the
   rest functionally warmed. *)
let spec = Wish_sim.Sampler.spec ~warm:500 ~detail:16_000

let tolerance_pct = 2.0

let run pool name =
  let bench = Wish_workloads.Workloads.find ~scale:1 name in
  let bins =
    Wish_compiler.Compiler.compile_all ~mem_words:bench.mem_words ~name:bench.name
      ~profile_data:(Wish_workloads.Bench.profile_data bench) bench.ast
  in
  let program =
    Wish_workloads.Bench.program_for bench
      (Wish_compiler.Compiler.binary bins Wish_compiler.Policy.Wish_jjl)
      "A"
  in
  let trace, _ = Wish_emu.Trace.generate program in
  let exact = Wish_sim.Runner.simulate ~trace program in
  let want_cycles, want_retired = List.assoc name golden in
  if exact.cycles <> want_cycles || exact.retired_uops <> want_retired then (
    Printf.eprintf "FAIL %s: exact run differs from seed (%d cycles / %d uops, want %d / %d)\n"
      name exact.cycles exact.retired_uops want_cycles want_retired;
    exit 1);
  let s, r = Wish_sim.Runner.simulate_sampled ~spec ~trace program in
  let err = 100.0 *. (s.upc -. exact.upc) /. exact.upc in
  Printf.printf "%-6s exact uPC %.4f | sampled %.4f +/- %.4f (%d windows, %d/%d measured), err %+.2f%%\n%!"
    name exact.upc s.upc r.r_upc_ci (List.length r.r_windows) r.r_measured_entries
    r.r_total_insts err;
  if Float.abs err > tolerance_pct then (
    Printf.eprintf "FAIL %s: sampled uPC error %+.2f%% exceeds %.1f%%\n" name err tolerance_pct;
    exit 1);
  let s_par, r_par = Wish_sim.Runner.simulate_sampled ~pool ~spec ~trace program in
  if s_par <> { s with stats = s_par.stats } || r_par.r_upc <> r.r_upc
     || r_par.r_est_cycles <> r.r_est_cycles
     || r_par.r_windows <> r.r_windows
  then (
    Printf.eprintf "FAIL %s: interval-parallel sampled run differs from serial\n" name;
    exit 1);
  (* Fused trace-free warming must reproduce the trace-based report bit
     for bit, serially and with pooled windows. *)
  let fused = Wish_sim.Sampler.run_fused ~config:Wish_sim.Config.default ~spec program in
  if compare fused r <> 0 then (
    Printf.eprintf "FAIL %s: fused-warming sampled run differs from trace-based\n" name;
    exit 1);
  let fused_par = Wish_sim.Sampler.run_fused ~pool ~config:Wish_sim.Config.default ~spec program in
  if compare fused_par r <> 0 then (
    Printf.eprintf "FAIL %s: pooled fused-warming sampled run differs from trace-based\n" name;
    exit 1)

let () =
  let pool = Wish_util.Pool.create ~size:2 () in
  Fun.protect
    ~finally:(fun () -> Wish_util.Pool.shutdown pool)
    (fun () ->
      run pool "gzip";
      run pool "mcf")
